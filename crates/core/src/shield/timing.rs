//! Cycle-cost model of the Shield's cryptographic engines.
//!
//! Calibration targets come straight from the paper:
//!
//! * **AES engines** are round-pipelined: with S-box duplication factor
//!   `p`, one round takes `16/p` cycles, and the pipeline sustains one
//!   16-byte block per round-time — `p` bytes/cycle for AES-128.
//!   AES-256 (14 rounds vs 10) sustains proportionally less. This gives
//!   the 4x↔16x separation visible in Fig. 5 and Fig. 6.
//! * **HMAC-SHA256 engines** process a chunk *serially* (Merkle–Damgård):
//!   one engine sustains [`HMAC_BYTES_PER_CYCLE`] on a long message and
//!   adds [`HMAC_FINALIZE_CYCLES`] latency per chunk. Engines only help
//!   across chunks. Large chunks therefore incur long blocking latencies
//!   — the DNNWeaver bottleneck of §6.2.4.
//! * **PMAC engines** are AES-based and block-parallel: work on one
//!   chunk is split across all MAC engines, each sustaining
//!   [`PMAC_BYTES_PER_CYCLE_PER_ENGINE`]. This is why swapping HMAC→PMAC
//!   rescues SDP (Table 2) and DNNWeaver (Fig. 6).
//!
//! Costs are expressed two ways:
//! * `lane` — steady-state occupancy charged to the engine-set lane
//!   (throughput view, used for pipelined streaming);
//! * `latency` — time until the chunk's data is available (used for
//!   blocking access patterns that wait on each chunk).

use shef_crypto::aes::AesKeySize;
use shef_crypto::authenc::MacAlgorithm;
use shef_fpga::clock::Cycles;

use super::config::EngineSetConfig;

/// Sustained bytes/cycle of one HMAC engine on long messages (a wide
/// SHA-256 datapath). Calibrated so the SDP configuration with one HMAC
/// engine reproduces Table 2's ~298 % overhead against the PCIe line
/// rate (see EXPERIMENTS.md).
pub const HMAC_BYTES_PER_CYCLE: u64 = 12;
/// Per-chunk HMAC pipeline bubble in the *throughput* view (consecutive
/// chunks overlap all but the tag emission).
pub const HMAC_CHUNK_BUBBLE: u64 = 4;
/// Full inner/outer finalization latency charged to *blocking*
/// consumers (the DNNWeaver weight-stall path, §6.2.4).
pub const HMAC_FINALIZE_CYCLES: u64 = 72;
/// Sustained bytes/cycle of one PMAC engine (AES-based mask+encrypt
/// datapath). Calibrated so 4 PMAC engines reproduce Table 2's 59 % row.
pub const PMAC_BYTES_PER_CYCLE_PER_ENGINE: u64 = 7;
/// Sustained bytes/cycle of one GHASH engine: a pipelined GF(2^128)
/// multiplier retires one 16-byte block per cycle, and precomputed
/// powers of `H` parallelize a single chunk across engines. Not a paper
/// measurement — the figure for a full-width pipelined multiplier,
/// which is what the GHASH engine's higher LUT cost buys.
pub const GHASH_BYTES_PER_CYCLE_PER_ENGINE: u64 = 16;
/// Lane name for the accelerator-facing read port (buffer → accel).
pub const ACCEL_PORT_READ_LANE: &str = "port.accel.read";
/// Lane name for the accelerator-facing write port (accel → buffer).
pub const ACCEL_PORT_WRITE_LANE: &str = "port.accel.write";
/// Shell-facing AXI4 port width: bytes per cycle per direction (the
/// 512-bit F1 port; reads and writes have independent channels).
pub const SHELL_PORT_BYTES_PER_CYCLE: u64 = 64;
/// Lane name for the Shell-port read channel.
pub const PORT_READ_LANE: &str = "port.read";
/// Lane name for the Shell-port write channel.
pub const PORT_WRITE_LANE: &str = "port.write";
/// Pipeline-fill cycles charged once per chunk on the AES path.
pub const AES_PIPELINE_FILL: u64 = 10;
/// Cycles to move one 64-byte beat between buffer and accelerator.
pub const ONCHIP_BEAT_CYCLES: u64 = 1;

/// Cost of cryptographically processing one chunk access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkCost {
    /// Steady-state engine-set occupancy.
    pub lane: Cycles,
    /// Time until data is available (blocking consumers).
    pub latency: Cycles,
}

impl ChunkCost {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: ChunkCost) -> ChunkCost {
        ChunkCost {
            lane: self.lane + other.lane,
            latency: self.latency + other.latency,
        }
    }
}

/// Bytes/cycle sustained by the set's AES engines combined.
#[must_use]
pub fn aes_bytes_per_cycle(cfg: &EngineSetConfig) -> u64 {
    // One engine: 16 B per round-time; round-time = 16/p cycles;
    // AES-256 is 10/14 the throughput of AES-128.
    let per_engine_x10 = match cfg.key_size {
        AesKeySize::Aes128 => cfg.sbox.factor() as u64 * 10,
        AesKeySize::Aes256 => cfg.sbox.factor() as u64 * 10 * 10 / 14,
    };
    // Round to the nearest byte/cycle (truncation would turn the
    // 2.86 B/cyc of AES-256/4x into 2, overstating its penalty).
    ((per_engine_x10 * cfg.aes_engines as u64 + 5) / 10).max(1)
}

/// Bytes/cycle sustained by the set's MAC engines combined (across-chunk
/// parallelism for HMAC, within-chunk for PMAC).
#[must_use]
pub fn mac_bytes_per_cycle(cfg: &EngineSetConfig) -> u64 {
    match cfg.mac {
        MacAlgorithm::HmacSha256 => HMAC_BYTES_PER_CYCLE * cfg.mac_engines as u64,
        MacAlgorithm::PmacAes => PMAC_BYTES_PER_CYCLE_PER_ENGINE * cfg.mac_engines as u64,
        MacAlgorithm::AesGcm => GHASH_BYTES_PER_CYCLE_PER_ENGINE * cfg.mac_engines as u64,
    }
}

/// AES cost for `len` bytes of one chunk.
#[must_use]
pub fn aes_chunk_cost(cfg: &EngineSetConfig, len: usize) -> ChunkCost {
    let bpc = aes_bytes_per_cycle(cfg);
    let work = (len as u64).div_ceil(bpc);
    ChunkCost {
        lane: Cycles(work),
        latency: Cycles(work + AES_PIPELINE_FILL * cfg.sbox.cycles_per_round()),
    }
}

/// MAC cost for `len` bytes of one chunk.
#[must_use]
pub fn mac_chunk_cost(cfg: &EngineSetConfig, len: usize) -> ChunkCost {
    match cfg.mac {
        MacAlgorithm::HmacSha256 => {
            // Serial within the chunk: a blocking consumer waits for the
            // full compression chain plus finalization.
            let latency = (len as u64).div_ceil(HMAC_BYTES_PER_CYCLE) + HMAC_FINALIZE_CYCLES;
            // Throughput view: consecutive chunks pipeline through the
            // engine (finalization overlaps the next chunk's stream,
            // leaving a small bubble); engines also divide across chunks.
            let per_chunk = (len as u64).div_ceil(HMAC_BYTES_PER_CYCLE) + HMAC_CHUNK_BUBBLE;
            let lane = per_chunk.div_ceil(cfg.mac_engines as u64);
            ChunkCost {
                lane: Cycles(lane),
                latency: Cycles(latency),
            }
        }
        MacAlgorithm::PmacAes => {
            // Parallel within the chunk: all engines share one chunk.
            let combined = PMAC_BYTES_PER_CYCLE_PER_ENGINE * cfg.mac_engines as u64;
            let work = (len as u64).div_ceil(combined) + AES_PIPELINE_FILL;
            ChunkCost {
                lane: Cycles(work),
                latency: Cycles(work),
            }
        }
        MacAlgorithm::AesGcm => {
            // GHASH is also within-chunk parallel (powers of H), with a
            // higher per-engine rate and a short multiplier pipeline.
            let combined = GHASH_BYTES_PER_CYCLE_PER_ENGINE * cfg.mac_engines as u64;
            let work = (len as u64).div_ceil(combined) + AES_PIPELINE_FILL;
            ChunkCost {
                lane: Cycles(work),
                latency: Cycles(work),
            }
        }
    }
}

/// Full authenticated-encryption cost for one chunk access. Decryption
/// and MAC verification overlap (both consume the same ciphertext
/// stream), so the combined cost is the max of the two paths.
#[must_use]
pub fn chunk_crypto_cost(cfg: &EngineSetConfig, len: usize) -> ChunkCost {
    let aes = aes_chunk_cost(cfg, len);
    let mac = mac_chunk_cost(cfg, len);
    ChunkCost {
        lane: aes.lane.max(mac.lane),
        latency: aes.latency.max(mac.latency),
    }
}

/// Cost of serving `len` bytes from the on-chip buffer (a hit).
#[must_use]
pub fn buffer_hit_cost(len: usize) -> Cycles {
    Cycles((len as u64).div_ceil(64) * ONCHIP_BEAT_CYCLES)
}

/// Occupancy of a batch of chunk-crypto jobs fanned across `lanes`
/// replicated engine groups (the paper's parallel seal/open datapath,
/// §5.2.2/§6).
///
/// Jobs are assigned round-robin (job *i* → lane *i* mod `lanes`), which
/// is deterministic and matches a hardware dispatcher that issues chunks
/// to engine groups in arrival order. Two views come out:
///
/// * **Streaming** — the lanes genuinely overlap, so the batch costs the
///   *makespan* (busiest lane); charge [`BatchCost::per_lane`] to
///   per-lane ledger lanes and let the bottleneck model take the max.
/// * **Blocking** — the consumer stalls on every chunk in order, so
///   replication buys nothing; charge [`BatchCost::serial_latency`] to
///   the ledger's serial term, exactly like the serial datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCost {
    /// Steady-state occupancy per lane, in round-robin assignment order.
    pub per_lane: Vec<Cycles>,
    /// Sum of per-chunk availability latencies (the blocking view).
    pub serial_latency: Cycles,
}

impl BatchCost {
    /// The busiest lane's occupancy — what the batch costs when lanes
    /// truly overlap.
    #[must_use]
    pub fn makespan(&self) -> Cycles {
        self.per_lane.iter().copied().max().unwrap_or_default()
    }

    /// Total crypto work across all lanes — what the same batch would
    /// occupy on a single serial engine set.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.per_lane.iter().copied().sum()
    }

    /// Modelled parallel speedup: serial-equivalent work over makespan.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let makespan = self.makespan().0;
        if makespan == 0 {
            1.0
        } else {
            self.total().0 as f64 / makespan as f64
        }
    }

    /// Fraction of the lanes' aggregate capacity the batch actually
    /// used (1.0 = perfectly balanced, →0 = one lane did everything
    /// while the rest idled).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan().0;
        if makespan == 0 || self.per_lane.is_empty() {
            1.0
        } else {
            self.total().0 as f64 / (makespan * self.per_lane.len() as u64) as f64
        }
    }
}

/// Computes the per-lane cost of processing `chunk_lens` (one entry per
/// seal/open job, in dispatch order) across `lanes` engine groups.
#[must_use]
pub fn parallel_batch_cost(cfg: &EngineSetConfig, chunk_lens: &[usize], lanes: usize) -> BatchCost {
    let lanes = lanes.max(1);
    let mut per_lane = vec![Cycles::ZERO; lanes];
    let mut serial_latency = Cycles::ZERO;
    for (i, len) in chunk_lens.iter().enumerate() {
        let cost = chunk_crypto_cost(cfg, *len);
        per_lane[i % lanes] += cost.lane;
        serial_latency += cost.latency;
    }
    BatchCost {
        per_lane,
        serial_latency,
    }
}

/// Cycles the multi-tenant service's shard arbiter charges for picking
/// and dequeuing one request (compare shard clocks, pop the head, route
/// to the tenant's engine sets). A small fixed cost: the arbiter is a
/// priority mux over per-shard head-of-line registers, not a datapath.
pub const SHARD_ARBITRATION_CYCLES: u64 = 2;

/// Logical-clock advance one dispatched service request contributes to
/// its shard: the arbitration overhead plus the request's own busy
/// cycles, floored at one cycle so the shard clock always makes
/// progress (a zero-length batch must still age the shard, or the
/// min-clock scheduler would starve every other shard).
#[must_use]
pub fn shard_dispatch_cost(request_busy: Cycles) -> Cycles {
    Cycles(SHARD_ARBITRATION_CYCLES + request_busy.0.max(1))
}

/// Cost of hashing one Merkle-tree node block (the Bonsai-Merkle-Tree
/// baseline of §5.2.2). Tree nodes are hashed by a dedicated HMAC
/// engine; blocks are small (tens of bytes), so the per-block
/// finalization latency dominates — which is exactly why a deep tree of
/// serial node verifications hurts blocking consumers.
#[must_use]
pub fn merkle_block_cost(block_len: usize) -> ChunkCost {
    let stream = (block_len as u64).div_ceil(HMAC_BYTES_PER_CYCLE);
    ChunkCost {
        lane: Cycles(stream + HMAC_CHUNK_BUBBLE),
        latency: Cycles(stream + HMAC_FINALIZE_CYCLES),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shef_crypto::aes::SBoxParallelism;

    fn cfg() -> EngineSetConfig {
        EngineSetConfig::default()
    }

    #[test]
    fn aes_throughput_scales_with_parallelism() {
        let mut c = cfg();
        c.sbox = SBoxParallelism::X4;
        assert_eq!(aes_bytes_per_cycle(&c), 4);
        c.sbox = SBoxParallelism::X16;
        assert_eq!(aes_bytes_per_cycle(&c), 16);
        c.aes_engines = 4;
        assert_eq!(aes_bytes_per_cycle(&c), 64);
    }

    #[test]
    fn aes256_is_slower_than_aes128() {
        let mut c128 = cfg();
        c128.sbox = SBoxParallelism::X16;
        let mut c256 = c128.clone();
        c256.key_size = AesKeySize::Aes256;
        assert!(aes_bytes_per_cycle(&c256) < aes_bytes_per_cycle(&c128));
        // Ratio ≈ 10/14.
        assert_eq!(aes_bytes_per_cycle(&c256), 11);
    }

    #[test]
    fn hmac_latency_is_serial_within_chunk() {
        let mut c = cfg();
        c.mac_engines = 4;
        let one = mac_chunk_cost(&c, 4096);
        // Latency unchanged by engine count…
        c.mac_engines = 1;
        let four = mac_chunk_cost(&c, 4096);
        assert_eq!(one.latency, four.latency);
        // …but lane occupancy divides.
        assert!(one.lane < four.lane);
    }

    #[test]
    fn pmac_latency_drops_with_engines() {
        let mut c = cfg();
        c.mac = shef_crypto::authenc::MacAlgorithm::PmacAes;
        c.mac_engines = 1;
        let one = mac_chunk_cost(&c, 4096);
        c.mac_engines = 4;
        let four = mac_chunk_cost(&c, 4096);
        assert!(four.latency < one.latency);
    }

    #[test]
    fn pmac_beats_hmac_latency_on_large_chunks() {
        // The DNNWeaver fix: 4 KB chunks, 4 PMAC engines vs 1 HMAC.
        let mut hmac = cfg();
        hmac.mac_engines = 1;
        let mut pmac = cfg();
        pmac.mac = shef_crypto::authenc::MacAlgorithm::PmacAes;
        pmac.mac_engines = 4;
        assert!(
            mac_chunk_cost(&pmac, 4096).latency < mac_chunk_cost(&hmac, 4096).latency,
            "PMAC×4 must have lower per-chunk latency than HMAC on 4KB chunks"
        );
    }

    #[test]
    fn combined_cost_is_max_of_paths() {
        let c = cfg();
        let total = chunk_crypto_cost(&c, 512);
        let aes = aes_chunk_cost(&c, 512);
        let mac = mac_chunk_cost(&c, 512);
        assert_eq!(total.lane, aes.lane.max(mac.lane));
        assert_eq!(total.latency, aes.latency.max(mac.latency));
    }

    #[test]
    fn buffer_hits_are_cheap() {
        assert!(buffer_hit_cost(512) < chunk_crypto_cost(&cfg(), 512).latency);
        assert_eq!(buffer_hit_cost(64), Cycles(1));
        assert_eq!(buffer_hit_cost(65), Cycles(2));
    }

    #[test]
    fn batch_cost_round_robin_is_deterministic() {
        let c = cfg();
        let lens = vec![512usize; 8];
        let batch = parallel_batch_cost(&c, &lens, 4);
        assert_eq!(batch.per_lane.len(), 4);
        // 8 equal jobs over 4 lanes: every lane gets exactly 2.
        let per_chunk = chunk_crypto_cost(&c, 512).lane;
        for lane in &batch.per_lane {
            assert_eq!(*lane, Cycles(per_chunk.0 * 2));
        }
        assert_eq!(batch.total(), Cycles(per_chunk.0 * 8));
        assert_eq!(batch.makespan(), Cycles(per_chunk.0 * 2));
    }

    #[test]
    fn streaming_makespan_scales_with_lanes() {
        let c = cfg();
        let lens = vec![4096usize; 16];
        let one = parallel_batch_cost(&c, &lens, 1);
        let four = parallel_batch_cost(&c, &lens, 4);
        assert_eq!(one.total(), four.total(), "work is conserved");
        assert_eq!(
            four.makespan().0 * 4,
            one.makespan().0,
            "16 equal chunks over 4 lanes overlap perfectly"
        );
        assert!((four.speedup() - 4.0).abs() < 1e-9);
        assert!((four.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blocking_view_is_lane_count_invariant() {
        let c = cfg();
        let lens = vec![4096usize; 16];
        let one = parallel_batch_cost(&c, &lens, 1);
        let eight = parallel_batch_cost(&c, &lens, 8);
        assert_eq!(
            one.serial_latency, eight.serial_latency,
            "a blocking consumer stalls per chunk; replication buys nothing"
        );
    }

    #[test]
    fn uneven_batches_report_imperfect_utilization() {
        let c = cfg();
        // 5 jobs over 4 lanes: lane 0 does double work.
        let batch = parallel_batch_cost(&c, &[512; 5], 4);
        assert!(batch.speedup() > 2.0 && batch.speedup() < 4.0);
        assert!(batch.utilization() < 1.0);
    }

    #[test]
    fn empty_batch_is_free() {
        let batch = parallel_batch_cost(&cfg(), &[], 4);
        assert_eq!(batch.makespan(), Cycles::ZERO);
        assert_eq!(batch.serial_latency, Cycles::ZERO);
        assert!((batch.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shard_dispatch_always_advances_the_clock() {
        assert_eq!(
            shard_dispatch_cost(Cycles::ZERO),
            Cycles(SHARD_ARBITRATION_CYCLES + 1)
        );
        assert_eq!(
            shard_dispatch_cost(Cycles(100)),
            Cycles(SHARD_ARBITRATION_CYCLES + 100)
        );
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let batch = parallel_batch_cost(&cfg(), &[512; 3], 0);
        assert_eq!(batch.per_lane.len(), 1);
    }
}
