//! FPGA resource (area) model of the Shield.
//!
//! Per-component costs are the paper's own Vivado measurements on AWS F1
//! (Table 1). A full Shield's utilization is the sum over its
//! configuration — which is how the paper presents Table 3 ("inclusive
//! resource utilization … for the largest Shield configuration across
//! accelerators"). Device totals are chosen so the percentages in
//! Table 1 are reproduced from its absolute numbers (VU9P-class device).

use super::config::{EngineSetConfig, ShieldConfig};
use shef_crypto::aes::SBoxParallelism;
use shef_crypto::authenc::MacAlgorithm;

/// LUTs available to user logic on the F1 VU9P.
pub const DEVICE_LUTS: u64 = 894_000;
/// Flip-flops (registers) available.
pub const DEVICE_REGS: u64 = 1_790_000;
/// BRAM36 blocks available.
pub const DEVICE_BRAM36: u64 = 1_680;
/// Bits per BRAM36 block.
pub const BRAM36_BITS: u64 = 36 * 1024;
/// Total on-chip memory pool including UltraRAM, bits (the paper's
/// "max available 382Mb").
pub const DEVICE_OCM_BITS: u64 = 382 * 1024 * 1024;

/// Resource usage of one component or a whole Shield.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// BRAM36 blocks (control/FIFO memory inside components).
    pub bram: u64,
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub reg: u64,
    /// On-chip memory bits for buffers and counters (BRAM/URAM pool).
    pub ocm_bits: u64,
}

impl Resources {
    /// Component-wise addition.
    #[must_use]
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            bram: self.bram + other.bram,
            lut: self.lut + other.lut,
            reg: self.reg + other.reg,
            ocm_bits: self.ocm_bits + other.ocm_bits,
        }
    }

    /// Scales by an integer count.
    #[must_use]
    pub fn times(self, n: u64) -> Resources {
        Resources {
            bram: self.bram * n,
            lut: self.lut * n,
            reg: self.reg * n,
            ocm_bits: self.ocm_bits * n,
        }
    }

    /// Percentage of device LUTs.
    #[must_use]
    pub fn lut_pct(&self) -> f64 {
        self.lut as f64 / DEVICE_LUTS as f64 * 100.0
    }

    /// Percentage of device registers.
    #[must_use]
    pub fn reg_pct(&self) -> f64 {
        self.reg as f64 / DEVICE_REGS as f64 * 100.0
    }

    /// Percentage of device BRAM, counting both component BRAM and the
    /// OCM pool mapped onto BRAM36 blocks.
    #[must_use]
    pub fn bram_pct(&self) -> f64 {
        let blocks = self.bram + self.ocm_bits.div_ceil(BRAM36_BITS);
        blocks as f64 / DEVICE_BRAM36 as f64 * 100.0
    }
}

/// Table 1 constants: the three base modules.
pub mod component {
    use super::Resources;

    /// Shield controller.
    pub const CONTROLLER: Resources = Resources {
        bram: 0,
        lut: 2_348,
        reg: 547,
        ocm_bits: 0,
    };
    /// Engine-set base logic (burst handling, buffers' control, counters'
    /// control — excluding crypto engines and OCM).
    pub const ENGINE_SET_BASE: Resources = Resources {
        bram: 2,
        lut: 1_068,
        reg: 2_508,
        ocm_bits: 0,
    };
    /// Register interface.
    pub const REG_INTERFACE: Resources = Resources {
        bram: 0,
        lut: 3_251,
        reg: 1_902,
        ocm_bits: 0,
    };
    /// AES engine with 4× S-box duplication.
    pub const AES_4X: Resources = Resources {
        bram: 0,
        lut: 2_435,
        reg: 2_347,
        ocm_bits: 0,
    };
    /// AES engine with 16× S-box duplication.
    pub const AES_16X: Resources = Resources {
        bram: 0,
        lut: 2_898,
        reg: 2_347,
        ocm_bits: 0,
    };
    /// SHA-256 HMAC engine.
    pub const HMAC: Resources = Resources {
        bram: 0,
        lut: 3_926,
        reg: 2_636,
        ocm_bits: 0,
    };
    /// AES-based PMAC engine.
    pub const PMAC: Resources = Resources {
        bram: 0,
        lut: 2_545,
        reg: 2_570,
        ocm_bits: 0,
    };
    /// GHASH engine (pipelined GF(2^128) multiplier). Not measured by
    /// the paper; our estimate for a digit-serial Karatsuba multiplier
    /// plus the GCM counter path, between the HMAC and PMAC engines in
    /// LUT cost.
    pub const GHASH: Resources = Resources {
        bram: 0,
        lut: 3_410,
        reg: 2_480,
        ocm_bits: 0,
    };
}

/// Area of one AES engine at the given S-box parallelism. The paper
/// measures 4x and 16x; other factors interpolate between the 4x LUT
/// cost and the 16x one (S-box copies dominate the delta).
#[must_use]
pub fn aes_engine(sbox: SBoxParallelism) -> Resources {
    use component::{AES_16X, AES_4X};
    match sbox.factor() {
        4 => AES_4X,
        16 => AES_16X,
        f => {
            // Linear in the number of S-box copies between the two
            // measured points (Δ = 463 LUT for 12 copies).
            let base = AES_4X.lut as i64 - (463 * 4 / 12);
            let lut = base + (463 * f as i64 / 12);
            Resources {
                bram: 0,
                lut: lut.max(0) as u64,
                reg: AES_4X.reg,
                ocm_bits: 0,
            }
        }
    }
}

/// Area of one MAC engine.
#[must_use]
pub fn mac_engine(mac: MacAlgorithm) -> Resources {
    match mac {
        MacAlgorithm::HmacSha256 => component::HMAC,
        MacAlgorithm::PmacAes => component::PMAC,
        MacAlgorithm::AesGcm => component::GHASH,
    }
}

/// Bits of on-chip counter storage for a region with `chunks` chunks
/// (64-bit counters, as in §5.2.2's counter module).
#[must_use]
pub fn counter_bits(chunks: u64) -> u64 {
    chunks * 64
}

/// Area of one fully configured engine set (base + engines + OCM).
#[must_use]
pub fn engine_set(cfg: &EngineSetConfig, region_len: u64) -> Resources {
    let mut r = component::ENGINE_SET_BASE;
    r = r.plus(aes_engine(cfg.sbox).times(cfg.aes_engines as u64));
    r = r.plus(mac_engine(cfg.mac).times(cfg.mac_engines as u64));
    r.ocm_bits += cfg.buffer_bytes as u64 * 8;
    if cfg.counters {
        let chunks = region_len.div_ceil(cfg.chunk_size as u64);
        r.ocm_bits += counter_bits(chunks);
    }
    if let Some(merkle) = &cfg.merkle {
        // The Bonsai-Merkle-Tree baseline trades the counter OCM for a
        // dedicated tree-hash engine, a root register, and an optional
        // verified-node cache. Counters themselves live in DRAM.
        r = r.plus(component::HMAC);
        r.ocm_bits += 128; // on-chip root digest register
        r.ocm_bits += merkle.node_cache_bytes as u64 * 8;
    }
    r
}

/// Full-Shield utilization for a configuration: controller + register
/// interface + every engine set.
#[must_use]
pub fn shield_area(cfg: &ShieldConfig) -> Resources {
    let mut total = component::CONTROLLER.plus(component::REG_INTERFACE);
    // The register interface carries one AES + one MAC engine for its
    // authenticated encryption (Fig. 4 shows Enc/Dec + MAC on the
    // AXI-Lite path).
    total = total.plus(aes_engine(SBoxParallelism::X16));
    total = total.plus(mac_engine(MacAlgorithm::HmacSha256));
    for region in &cfg.regions {
        total = total.plus(engine_set(&region.engine_set, region.range.len));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::config::{MemRange, ShieldConfig};

    #[test]
    fn table1_percentages_reproduce() {
        // Controller: 2348 LUT = 0.26 % of 894k; 547 REG = 0.03 % of 1.79M.
        let c = component::CONTROLLER;
        assert!((c.lut_pct() - 0.26).abs() < 0.01, "{}", c.lut_pct());
        assert!((c.reg_pct() - 0.03).abs() < 0.01, "{}", c.reg_pct());
        // Engine set: 1068 LUT = 0.12 %, 2508 REG = 0.14 %, 2 BRAM = 0.12 %.
        let e = component::ENGINE_SET_BASE;
        assert!((e.lut_pct() - 0.12).abs() < 0.01);
        assert!((e.reg_pct() - 0.14).abs() < 0.01);
        assert!((e.bram_pct() - 0.12).abs() < 0.01);
        // Register interface: 3251 LUT = 0.36 %, 1902 REG = 0.11 %.
        let r = component::REG_INTERFACE;
        assert!((r.lut_pct() - 0.36).abs() < 0.01);
        assert!((r.reg_pct() - 0.11).abs() < 0.01);
        // AES-16x: 2898 LUT = 0.32 %; HMAC 3926 = 0.44 %; PMAC 2545 = 0.28 %.
        assert!((component::AES_16X.lut_pct() - 0.32).abs() < 0.01);
        assert!((component::HMAC.lut_pct() - 0.44).abs() < 0.01);
        assert!((component::PMAC.lut_pct() - 0.28).abs() < 0.01);
    }

    #[test]
    fn resources_algebra() {
        let a = Resources {
            bram: 1,
            lut: 10,
            reg: 20,
            ocm_bits: 8,
        };
        let b = a.plus(a);
        assert_eq!(b.lut, 20);
        assert_eq!(a.times(3).reg, 60);
    }

    #[test]
    fn interpolated_aes_sizes_are_monotonic() {
        let a1 = aes_engine(SBoxParallelism::X1).lut;
        let a4 = aes_engine(SBoxParallelism::X4).lut;
        let a8 = aes_engine(SBoxParallelism::X8).lut;
        let a16 = aes_engine(SBoxParallelism::X16).lut;
        assert!(a1 < a4 && a4 < a8 && a8 < a16);
        assert_eq!(a4, 2_435);
        assert_eq!(a16, 2_898);
    }

    #[test]
    fn engine_set_includes_buffers_and_counters() {
        let cfg = crate::shield::config::EngineSetConfig {
            buffer_bytes: 16 * 1024,
            counters: true,
            chunk_size: 64,
            ..crate::shield::config::EngineSetConfig::default()
        };
        let r = engine_set(&cfg, 1 << 20); // 1 MB region → 16384 chunks
        assert_eq!(r.ocm_bits, 16 * 1024 * 8 + 16_384 * 64);
    }

    #[test]
    fn bitcoin_config_matches_table3() {
        // Bitcoin uses only the register interface (no memory regions):
        // paper reports 1.4 % LUT, 0.42 % REG, 0 % BRAM.
        let cfg = ShieldConfig::builder().build().unwrap();
        let r = shield_area(&cfg);
        assert!((r.lut_pct() - 1.4).abs() < 0.1, "lut {}", r.lut_pct());
        assert!((r.reg_pct() - 0.42).abs() < 0.05, "reg {}", r.reg_pct());
        assert_eq!(r.bram, 0);
    }

    #[test]
    fn convolution_config_lut_matches_table3() {
        // 12 engine sets, AES-16x + HMAC each: paper reports 11 % LUT,
        // 5.2 % REG.
        let es = crate::shield::config::EngineSetConfig::default();
        let mut builder = ShieldConfig::builder();
        for i in 0..12 {
            builder = builder.region(
                &format!("r{i}"),
                MemRange::new(i as u64 * (1 << 20), 1 << 20),
                es.clone(),
            );
        }
        let cfg = builder.build().unwrap();
        let r = shield_area(&cfg);
        // Our model lands at ~12.0 % because it also counts the register
        // interface's own AES+HMAC engines; the paper's 11 % appears to
        // fold those into a shared engine. Documented in EXPERIMENTS.md.
        assert!((r.lut_pct() - 11.0).abs() < 1.2, "lut {}", r.lut_pct());
        assert!((r.reg_pct() - 5.2).abs() < 0.6, "reg {}", r.reg_pct());
    }
}
