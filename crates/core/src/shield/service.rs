//! Multi-tenant Shield service: admission control + sharded dispatch.
//!
//! ShEF's deployment model (§3) has mutually distrusting Data Owners
//! sharing one cloud FPGA fleet. [`ShieldService`] is the runtime for
//! that setting: it multiplexes many tenants over a sharded pool of
//! engine-set lanes while keeping three isolation properties
//! structural rather than policed:
//!
//! * **Key-domain separation** — every tenant's Shield is provisioned
//!   with the Data Encryption Key its owner sealed to the enclave
//!   during remote attestation (typically an independent HKDF domain of
//!   the owner's master key, [`DataEncryptionKey::tenant_key`]), so
//!   region keys, nonces, tree keys and register keys never collide
//!   across tenants (same address, two tenants → unrelated ciphertext
//!   and tags).
//! * **Address-namespace separation** — each tenant owns a private
//!   Shell and DRAM model; an address names different physical state
//!   per tenant, so no burst can reach another tenant's bytes.
//! * **Failure isolation** — each tenant owns its engine sets, so an
//!   integrity violation poisons only the victim's datapath; other
//!   tenants' requests keep flowing through the shared shard lanes.
//!
//! Requests enter a bounded admission queue ([`ShieldService::submit`]
//! rejects with [`ShieldFault::AdmissionReject`] when the queue or the
//! tenant's quota slice is full), are coalesced per shard, and are
//! dispatched by a min-clock arbiter over the shards' `CostLedger`-fed
//! logical clocks (see [`super::shard::ShieldShard`]). Every input to
//! scheduling is model-derived — no wall-clock, no randomness — so a
//! same-seed run is byte-identical, and a one-tenant service is
//! bit-identical to the bare parallel datapath (the differential
//! conformance suite holds this line).
//!
//! **Admission is attestation-gated.** [`ShieldService::register_tenant`]
//! takes an [`AttestedTenant`] — a credential only constructible by
//! redeeming a verifier-issued ticket on a measured Security Kernel
//! (`shef_attest`). The service checks the ticket against the verifier
//! key it pins and refuses replayed attestation sessions, so a tenant
//! that skipped (or failed) remote attestation cannot be registered at
//! all; the rejection surfaces as the typed
//! [`ShieldFault::AttestationRejected`].

use std::collections::BTreeSet;

use shef_attest::AttestedTenant;
use shef_crypto::ecies::EciesKeyPair;
use shef_crypto::ed25519::VerifyingKey;
use shef_fpga::clock::{CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;
use shef_telemetry::{Counter, Gauge, Telemetry};

use super::engine::AccessMode;
use super::keys::DataEncryptionKey;
use super::shard::ShieldShard;
use super::{Shield, ShieldConfig};
use crate::fault::ShieldFault;
use crate::ShefError;

/// Sizing and admission knobs of a [`ShieldService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Shards (each with its own worker pool and logical clock).
    /// Tenants are assigned round-robin by registration index.
    pub shards: usize,
    /// Worker lanes per shard's pool.
    pub lanes_per_shard: usize,
    /// Bound of the shared admission queue; submissions beyond it are
    /// rejected with [`ShieldFault::AdmissionReject`].
    pub queue_capacity: usize,
    /// Per-tenant cap on outstanding (admitted, undrained) requests —
    /// one tenant cannot occupy the whole queue.
    pub tenant_quota: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            lanes_per_shard: 2,
            queue_capacity: 64,
            tenant_quota: 16,
        }
    }
}

impl ServiceConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] if any knob is zero or the
    /// per-tenant quota exceeds the queue bound.
    pub fn validate(&self) -> Result<(), ShefError> {
        if self.shards == 0 {
            return Err(ShefError::InvalidConfig("service needs >= 1 shard".into()));
        }
        if self.lanes_per_shard == 0 {
            return Err(ShefError::InvalidConfig(
                "service shards need >= 1 worker lane".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ShefError::InvalidConfig(
                "admission queue capacity must be >= 1".into(),
            ));
        }
        if self.tenant_quota == 0 || self.tenant_quota > self.queue_capacity {
            return Err(ShefError::InvalidConfig(
                "tenant quota must be in 1..=queue_capacity".into(),
            ));
        }
        Ok(())
    }
}

/// Handle to a registered tenant (index into the service's tenant
/// table, in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// Builds a handle from a raw registration index (test helper; the
    /// canonical source is [`ShieldService::register_tenant`]).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        TenantId(index)
    }

    /// The registration index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to one admitted request (monotonically increasing in
/// admission order, service-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Builds a handle from its raw sequence number (test helper).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The admission sequence number.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One tenant request: a batch operation on the tenant's own address
/// namespace, executed over the shard's parallel datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceRequest {
    /// Read `len` plaintext bytes at `addr`.
    Read {
        /// Start address in the tenant's namespace.
        addr: u64,
        /// Bytes to read.
        len: usize,
        /// Streaming or blocking consumption (timing model).
        mode: AccessMode,
    },
    /// Write plaintext bytes at `addr`.
    Write {
        /// Start address in the tenant's namespace.
        addr: u64,
        /// Plaintext to write.
        data: Vec<u8>,
        /// Streaming or blocking consumption (timing model).
        mode: AccessMode,
    },
    /// Flush every engine-set buffer of the tenant's Shield.
    Flush,
}

/// An admitted, not-yet-dispatched request (the admission queue and
/// shard FIFO element).
#[derive(Debug, Clone)]
pub struct PendingRequest {
    /// Admission handle returned by [`ShieldService::submit`].
    pub id: RequestId,
    /// Submitting tenant.
    pub tenant: TenantId,
    /// The operation.
    pub request: ServiceRequest,
}

/// Outcome of one admitted request. Every admitted request yields
/// exactly one completion — errors (integrity violations, poisoning,
/// injected drops, tenant aborts) are carried in `payload`, never by
/// losing the request.
#[derive(Debug)]
pub struct Completion {
    /// Submitting tenant.
    pub tenant: TenantId,
    /// Admission handle.
    pub request: RequestId,
    /// `Ok(Some(bytes))` for reads, `Ok(None)` for writes/flushes.
    pub payload: Result<Option<Vec<u8>>, ShefError>,
}

/// Per-shard service instruments.
#[derive(Debug, Clone)]
struct ShardTelemetry {
    occupancy: Gauge,
    dispatched: Counter,
}

/// Pre-resolved `shield.service.*` handles (same attach/rebind pattern
/// as the engine sets: bound to a private registry until
/// [`ShieldService::attach_telemetry`] rebinds them).
#[derive(Debug, Clone)]
struct ServiceTelemetry {
    admitted: Counter,
    admission_rejects: Counter,
    attest_admitted: Counter,
    attest_rejected: Counter,
    dispatched: Counter,
    completed: Counter,
    queue_drops: Counter,
    tenant_aborts: Counter,
    queue_depth: Gauge,
    tenants: Gauge,
    shards: Vec<ShardTelemetry>,
}

impl ServiceTelemetry {
    fn bind(t: &Telemetry, shards: usize) -> Self {
        ServiceTelemetry {
            admitted: t.counter("shield.service.admitted"),
            admission_rejects: t.counter("shield.service.admission_rejects"),
            attest_admitted: t.counter("shield.attest.admitted"),
            attest_rejected: t.counter("shield.attest.rejected"),
            dispatched: t.counter("shield.service.dispatched"),
            completed: t.counter("shield.service.completed"),
            queue_drops: t.counter("shield.service.queue_drops"),
            tenant_aborts: t.counter("shield.service.tenant_aborts"),
            queue_depth: t.gauge("shield.service.queue_depth"),
            tenants: t.gauge("shield.service.tenants"),
            shards: (0..shards)
                .map(|i| ShardTelemetry {
                    occupancy: t.gauge(&format!("shield.service.shard{i}.occupancy")),
                    dispatched: t.counter(&format!("shield.service.shard{i}.dispatched")),
                })
                .collect(),
        }
    }
}

/// Per-tenant instruments, scoped by tenant name.
#[derive(Debug, Clone)]
struct TenantTelemetry {
    requests: Counter,
    rejects: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
}

impl TenantTelemetry {
    fn bind(t: &Telemetry, name: &str) -> Self {
        TenantTelemetry {
            requests: t.counter(&format!("shield.service.tenant.{name}.requests")),
            rejects: t.counter(&format!("shield.service.tenant.{name}.rejects")),
            bytes_read: t.counter(&format!("shield.service.tenant.{name}.bytes_read")),
            bytes_written: t.counter(&format!("shield.service.tenant.{name}.bytes_written")),
        }
    }
}

/// One tenant's private world: Shield (own engine sets, own key
/// domain), Shell, DRAM, and cost ledger.
struct Tenant {
    name: String,
    shard: usize,
    shield: Shield,
    shell: Shell,
    dram: Dram,
    ledger: CostLedger,
    aborted: bool,
    outstanding: usize,
    tele: TenantTelemetry,
}

/// The multi-tenant Shield runtime (see the module docs).
pub struct ShieldService {
    config: ServiceConfig,
    trusted_verifier: VerifyingKey,
    /// Attestation sessions already admitted — a ticket is single-use
    /// at the service layer too, so replaying an admitted credential
    /// (e.g. after a tenant is evicted) is refused.
    used_sessions: BTreeSet<[u8; 32]>,
    tenants: Vec<Tenant>,
    shards: Vec<ShieldShard>,
    queue: std::collections::VecDeque<PendingRequest>,
    drops: BTreeSet<RequestId>,
    next_request: u64,
    telemetry: Telemetry,
    tele: ServiceTelemetry,
}

impl core::fmt::Debug for ShieldService {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShieldService")
            .field("tenants", &self.tenants.len())
            .field("shards", &self.shards.len())
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl ShieldService {
    /// Builds an empty service that trusts attestation tickets signed
    /// by `trusted_verifier` (the Data Owners' remote verifier, see
    /// `shef_attest::RemoteVerifier::public_key`). The service holds no
    /// key material of its own: every tenant DEK arrives sealed through
    /// the attestation protocol.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] on inconsistent knobs.
    pub fn new(config: ServiceConfig, trusted_verifier: VerifyingKey) -> Result<Self, ShefError> {
        config.validate()?;
        let telemetry = Telemetry::new();
        let tele = ServiceTelemetry::bind(&telemetry, config.shards);
        let shards = (0..config.shards)
            .map(|i| ShieldShard::new(i, config.lanes_per_shard))
            .collect();
        Ok(ShieldService {
            config,
            trusted_verifier,
            used_sessions: BTreeSet::new(),
            tenants: Vec::new(),
            shards,
            queue: std::collections::VecDeque::new(),
            drops: BTreeSet::new(),
            next_request: 0,
            telemetry,
            tele,
        })
    }

    /// The sizing/admission knobs.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The service's telemetry registry (per-tenant scopes and
    /// `shield.service.*` instruments report here).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Rebinds the service, every tenant Shield, and every shard pool
    /// onto a shared registry (pool instruments attach once: the first
    /// registry a pool sees wins, matching [`super::pool::WorkerPool`]).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.tele = ServiceTelemetry::bind(telemetry, self.config.shards);
        self.tele.tenants.set(self.tenants.len() as u64);
        for tenant in &mut self.tenants {
            tenant.shield.attach_telemetry(telemetry);
            tenant.dram.attach_telemetry(telemetry);
            tenant.tele = TenantTelemetry::bind(telemetry, &tenant.name);
        }
        for shard in &self.shards {
            shard.attach_telemetry(telemetry);
        }
    }

    /// Registers a tenant: validates its attestation credential against
    /// the pinned verifier key, builds and provisions a private Shield
    /// over `shield_config` with the DEK the credential carries, and
    /// assigns the tenant to shard `index % shards`.
    ///
    /// The `grant` is an [`AttestedTenant`] — only constructible by
    /// redeeming a verifier-issued ticket on a measured Security
    /// Kernel — so unattested admission is impossible by construction,
    /// and this method additionally checks the ticket's issuer, its
    /// tenant binding, and that the attestation session has not been
    /// admitted before.
    ///
    /// # Errors
    ///
    /// * [`ShieldFault::AttestationRejected`] (as [`ShefError::Fault`])
    ///   if the ticket was not issued by the trusted verifier, is bound
    ///   to a different tenant name, or its session was already
    ///   admitted.
    /// * [`ShefError::InvalidConfig`] on a duplicate tenant name.
    /// * Shield construction/provisioning errors are propagated.
    pub fn register_tenant(
        &mut self,
        name: &str,
        shield_config: ShieldConfig,
        grant: &AttestedTenant,
    ) -> Result<TenantId, ShefError> {
        if self.tenants.iter().any(|t| t.name == name) {
            return Err(ShefError::InvalidConfig(format!(
                "duplicate tenant name '{name}'"
            )));
        }
        // Replay is checked first: a credential whose session was
        // already admitted is rejected as such even if the replayer
        // also re-bound it to a fresh tenant name.
        let session = grant.ticket().session();
        if self.used_sessions.contains(&session) {
            self.tele.attest_rejected.inc();
            return Err(ShefError::Fault(ShieldFault::AttestationRejected {
                tenant: name.to_owned(),
                reason: "attestation session already admitted (replayed credential)".into(),
            }));
        }
        if let Err(e) = grant.ticket().verify(&self.trusted_verifier, name) {
            self.tele.attest_rejected.inc();
            return Err(ShefError::Fault(ShieldFault::AttestationRejected {
                tenant: name.to_owned(),
                reason: e.to_string(),
            }));
        }
        let index = self.tenants.len();
        let shard = index % self.config.shards;
        let keypair = EciesKeyPair::from_seed(format!("shef.service.tenant.{name}").as_bytes());
        let mut shield = Shield::new(shield_config, keypair)?;
        let dek = DataEncryptionKey::from_bytes(grant.data_key());
        let load_key = dek.to_load_key(&shield.public_key());
        shield.provision_load_key(&load_key)?;
        shield.attach_telemetry(&self.telemetry);
        let tele = TenantTelemetry::bind(&self.telemetry, name);
        let mut dram = Dram::f1_default();
        dram.attach_telemetry(&self.telemetry);
        self.tenants.push(Tenant {
            name: name.to_owned(),
            shard,
            shield,
            shell: Shell::new(),
            dram,
            ledger: CostLedger::new(),
            aborted: false,
            outstanding: 0,
            tele,
        });
        self.used_sessions.insert(session);
        self.tele.attest_admitted.inc();
        self.tele.tenants.set(self.tenants.len() as u64);
        Ok(TenantId(index))
    }

    /// Registered tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Shards in the dispatch pool.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tenant's registered name.
    #[must_use]
    pub fn tenant_name(&self, tenant: TenantId) -> &str {
        &self.tenants[tenant.0].name
    }

    /// Index of the shard the tenant dispatches through.
    #[must_use]
    pub fn tenant_shard(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.0].shard
    }

    /// The tenant's private Shield (host-side register access, engine
    /// stats, poison state).
    pub fn tenant_shield(&mut self, tenant: TenantId) -> &mut Shield {
        &mut self.tenants[tenant.0].shield
    }

    /// The tenant's private Shell (host-side DMA staging).
    pub fn tenant_shell(&mut self, tenant: TenantId) -> &mut Shell {
        &mut self.tenants[tenant.0].shell
    }

    /// The tenant's private DRAM model.
    pub fn tenant_dram(&mut self, tenant: TenantId) -> &mut Dram {
        &mut self.tenants[tenant.0].dram
    }

    /// The tenant's cost ledger (read-only view).
    #[must_use]
    pub fn tenant_ledger(&self, tenant: TenantId) -> &CostLedger {
        &self.tenants[tenant.0].ledger
    }

    /// The tenant's cost ledger, mutable — for host-side charges that
    /// bypass the queue (sealed register crossings, accelerator compute
    /// occupancy), mirroring the single-tenant bus contract.
    pub fn tenant_ledger_mut(&mut self, tenant: TenantId) -> &mut CostLedger {
        &mut self.tenants[tenant.0].ledger
    }

    /// Split borrows of one tenant's whole private datapath — what a
    /// host-side DMA (`HostCpu::dma_to_device(shell, dram, ledger, …)`)
    /// needs simultaneously. The single-field accessors each borrow the
    /// service exclusively, so staging code uses this instead.
    pub fn tenant_datapath(
        &mut self,
        tenant: TenantId,
    ) -> (&mut Shield, &mut Shell, &mut Dram, &mut CostLedger) {
        let t = &mut self.tenants[tenant.0];
        (&mut t.shield, &mut t.shell, &mut t.dram, &mut t.ledger)
    }

    /// A shard (worker-pool access for fault arming, clock inspection).
    #[must_use]
    pub fn shard(&self, index: usize) -> &ShieldShard {
        &self.shards[index]
    }

    /// Requests admitted but not yet drained.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The tenant's admitted-but-undrained request count (what the
    /// quota is charged against).
    #[must_use]
    pub fn outstanding(&self, tenant: TenantId) -> usize {
        self.tenants[tenant.0].outstanding
    }

    /// Submits a request to the bounded admission queue.
    ///
    /// # Errors
    ///
    /// * [`ShieldFault::TenantAborted`] if the tenant is aborted.
    /// * [`ShieldFault::AdmissionReject`] if the queue is full or the
    ///   tenant is at quota — back-pressure; retry after a drain.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        request: ServiceRequest,
    ) -> Result<RequestId, ShefError> {
        let tenant_slot = &mut self.tenants[tenant.0];
        if tenant_slot.aborted {
            tenant_slot.tele.rejects.inc();
            self.tele.admission_rejects.inc();
            return Err(ShefError::Fault(ShieldFault::TenantAborted {
                tenant: tenant_slot.name.clone(),
            }));
        }
        if self.queue.len() >= self.config.queue_capacity
            || tenant_slot.outstanding >= self.config.tenant_quota
        {
            tenant_slot.tele.rejects.inc();
            self.tele.admission_rejects.inc();
            return Err(ShefError::Fault(ShieldFault::AdmissionReject {
                tenant: tenant_slot.name.clone(),
            }));
        }
        let id = RequestId(self.next_request);
        self.next_request += 1;
        tenant_slot.outstanding += 1;
        tenant_slot.tele.requests.inc();
        self.tele.admitted.inc();
        self.queue.push_back(PendingRequest {
            id,
            tenant,
            request,
        });
        self.tele.queue_depth.record_max(self.queue.len() as u64);
        Ok(id)
    }

    /// Coalesces the admission queue per shard (admission order within
    /// each shard) and dispatches everything through the min-clock
    /// arbiter. Returns one [`Completion`] per admitted request, in
    /// dispatch order. Failures complete with their error — one
    /// tenant's poisoned engine set, injected drop or abort never
    /// stalls or loses another tenant's requests.
    pub fn drain(&mut self) -> Vec<Completion> {
        while let Some(pending) = self.queue.pop_front() {
            let shard = self.tenants[pending.tenant.0].shard;
            self.shards[shard].enqueue(pending);
        }
        for shard in &self.shards {
            self.tele.shards[shard.index()]
                .occupancy
                .record_max(shard.queue_len() as u64);
        }
        let mut completions = Vec::new();
        loop {
            let next = self
                .shards
                .iter()
                .filter(|s| s.has_work())
                .min_by_key(|s| (s.clock(), s.index()))
                .map(ShieldShard::index);
            let Some(shard_index) = next else { break };
            let pending = self.shards[shard_index].pop().expect("shard has work");
            completions.push(self.execute_one(shard_index, pending));
        }
        completions
    }

    /// Executes one dequeued request on its tenant's private datapath
    /// over the shard's worker pool, then advances the shard clock by
    /// the tenant-ledger busy delta.
    fn execute_one(&mut self, shard_index: usize, pending: PendingRequest) -> Completion {
        let dropped = self.drops.remove(&pending.id);
        let tenant_slot = &mut self.tenants[pending.tenant.0];
        tenant_slot.outstanding -= 1;
        self.tele.dispatched.inc();
        self.tele.shards[shard_index].dispatched.inc();
        let payload = if dropped {
            self.tele.queue_drops.inc();
            Err(ShefError::Fault(ShieldFault::QueueDrop {
                tenant: tenant_slot.name.clone(),
            }))
        } else if tenant_slot.aborted {
            Err(ShefError::Fault(ShieldFault::TenantAborted {
                tenant: tenant_slot.name.clone(),
            }))
        } else {
            let before = tenant_slot.ledger.total_busy();
            let pool = self.shards[shard_index].pool();
            let result = match &pending.request {
                ServiceRequest::Read { addr, len, mode } => tenant_slot
                    .shield
                    .read_parallel(
                        &mut tenant_slot.shell,
                        &mut tenant_slot.dram,
                        &mut tenant_slot.ledger,
                        *addr,
                        *len,
                        *mode,
                        pool,
                    )
                    .map(Some),
                ServiceRequest::Write { addr, data, mode } => tenant_slot
                    .shield
                    .write_parallel(
                        &mut tenant_slot.shell,
                        &mut tenant_slot.dram,
                        &mut tenant_slot.ledger,
                        *addr,
                        data,
                        *mode,
                        pool,
                    )
                    .map(|()| None),
                ServiceRequest::Flush => tenant_slot
                    .shield
                    .flush_parallel(
                        &mut tenant_slot.shell,
                        &mut tenant_slot.dram,
                        &mut tenant_slot.ledger,
                        pool,
                    )
                    .map(|()| None),
            };
            match &result {
                Ok(Some(bytes)) => tenant_slot.tele.bytes_read.add(bytes.len() as u64),
                Ok(None) => {
                    if let ServiceRequest::Write { data, .. } = &pending.request {
                        tenant_slot.tele.bytes_written.add(data.len() as u64);
                    }
                }
                Err(_) => {}
            }
            let busy = Cycles(tenant_slot.ledger.total_busy().0.saturating_sub(before.0));
            self.shards[shard_index].advance(busy);
            result
        };
        self.tele.completed.inc();
        Completion {
            tenant: pending.tenant,
            request: pending.id,
            payload,
        }
    }

    /// Aborts a tenant mid-batch (operator action / injected fault):
    /// its queued requests complete with [`ShieldFault::TenantAborted`]
    /// and new submissions are refused, while other tenants are
    /// untouched.
    pub fn abort_tenant(&mut self, tenant: TenantId) {
        let tenant_slot = &mut self.tenants[tenant.0];
        if !tenant_slot.aborted {
            tenant_slot.aborted = true;
            self.tele.tenant_aborts.inc();
        }
    }

    /// Whether the tenant is currently aborted.
    #[must_use]
    pub fn tenant_aborted(&self, tenant: TenantId) -> bool {
        self.tenants[tenant.0].aborted
    }

    /// Re-admits an aborted tenant (operator action after triage).
    pub fn clear_abort(&mut self, tenant: TenantId) {
        self.tenants[tenant.0].aborted = false;
    }

    /// Fault-injection hook: marks an admitted, not-yet-drained request
    /// to complete as [`ShieldFault::QueueDrop`] instead of executing.
    /// Returns `false` (and arms nothing) if the request is not
    /// currently queued.
    pub fn inject_queue_drop(&mut self, request: RequestId) -> bool {
        if self.queue.iter().any(|p| p.id == request) {
            self.drops.insert(request);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EngineSetConfig, MemRange};
    use super::*;

    const CHUNK: usize = 512;

    fn tenant_config() -> ShieldConfig {
        ShieldConfig::builder()
            .region(
                "main",
                MemRange::new(0x1000, 16 * CHUNK as u64),
                EngineSetConfig {
                    buffer_bytes: 4 * CHUNK,
                    ..EngineSetConfig::default()
                },
            )
            .build()
            .unwrap()
    }

    /// Honest attestation fixture shared by the tests: the service
    /// pins the environment's verifier, and tenants onboard through a
    /// full attestation round before registration.
    fn service(config: ServiceConfig) -> (ShieldService, shef_attest::AttestationEnvironment) {
        let env = shef_attest::AttestationEnvironment::new(b"service-unit-tests").unwrap();
        let svc = ShieldService::new(config, env.verifier_public()).unwrap();
        (svc, env)
    }

    fn register(
        svc: &mut ShieldService,
        env: &mut shef_attest::AttestationEnvironment,
        name: &str,
    ) -> TenantId {
        let master = DataEncryptionKey::from_bytes([0x21u8; 32]);
        let grant = env
            .onboard(name, master.tenant_key(name).to_bytes())
            .unwrap();
        svc.register_tenant(name, tenant_config(), &grant).unwrap()
    }

    fn write(addr: u64, data: Vec<u8>) -> ServiceRequest {
        ServiceRequest::Write {
            addr,
            data,
            mode: AccessMode::Streaming,
        }
    }

    fn read(addr: u64, len: usize) -> ServiceRequest {
        ServiceRequest::Read {
            addr,
            len,
            mode: AccessMode::Streaming,
        }
    }

    #[test]
    fn config_validation_rejects_zero_knobs() {
        for bad in [
            ServiceConfig {
                shards: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                lanes_per_shard: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                queue_capacity: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                tenant_quota: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                queue_capacity: 4,
                tenant_quota: 8,
                ..ServiceConfig::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(ShefError::InvalidConfig(_))));
        }
    }

    #[test]
    fn write_read_round_trip_through_the_service() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        let t = register(&mut svc, &mut env, "alice");
        let data = vec![0xAB; 2 * CHUNK];
        svc.submit(t, write(0x1000, data.clone())).unwrap();
        let id = svc.submit(t, read(0x1000, data.len())).unwrap();
        let completions = svc.drain();
        assert_eq!(completions.len(), 2);
        let got = completions
            .iter()
            .find(|c| c.request == id)
            .unwrap()
            .payload
            .as_ref()
            .unwrap()
            .clone()
            .unwrap();
        assert_eq!(got, data);
        assert_eq!(svc.outstanding(t), 0);
    }

    #[test]
    fn admission_queue_bound_is_enforced() {
        let (mut svc, mut env) = service(ServiceConfig {
            queue_capacity: 2,
            tenant_quota: 2,
            ..ServiceConfig::default()
        });
        let t = register(&mut svc, &mut env, "alice");
        svc.submit(t, ServiceRequest::Flush).unwrap();
        svc.submit(t, ServiceRequest::Flush).unwrap();
        let err = svc.submit(t, ServiceRequest::Flush).unwrap_err();
        assert!(matches!(
            err,
            ShefError::Fault(ShieldFault::AdmissionReject { .. })
        ));
        // Draining frees the queue; admission works again.
        assert_eq!(svc.drain().len(), 2);
        svc.submit(t, ServiceRequest::Flush).unwrap();
    }

    #[test]
    fn tenant_quota_is_enforced_independently_of_queue_space() {
        let (mut svc, mut env) = service(ServiceConfig {
            queue_capacity: 8,
            tenant_quota: 1,
            ..ServiceConfig::default()
        });
        let a = register(&mut svc, &mut env, "alice");
        let b = register(&mut svc, &mut env, "bob");
        svc.submit(a, ServiceRequest::Flush).unwrap();
        assert!(svc.submit(a, ServiceRequest::Flush).is_err());
        // Another tenant still has quota.
        svc.submit(b, ServiceRequest::Flush).unwrap();
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        register(&mut svc, &mut env, "alice");
        let master = DataEncryptionKey::from_bytes([0x21u8; 32]);
        let grant = env
            .onboard("alice", master.tenant_key("alice").to_bytes())
            .unwrap();
        assert!(matches!(
            svc.register_tenant("alice", tenant_config(), &grant),
            Err(ShefError::InvalidConfig(_))
        ));
    }

    #[test]
    fn tenants_round_robin_across_shards() {
        let (mut svc, mut env) = service(ServiceConfig {
            shards: 2,
            ..ServiceConfig::default()
        });
        let a = register(&mut svc, &mut env, "a");
        let b = register(&mut svc, &mut env, "b");
        let c = register(&mut svc, &mut env, "c");
        assert_eq!(svc.tenant_shard(a), 0);
        assert_eq!(svc.tenant_shard(b), 1);
        assert_eq!(svc.tenant_shard(c), 0);
    }

    #[test]
    fn injected_drop_completes_with_queue_drop_error() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        let t = register(&mut svc, &mut env, "alice");
        let id = svc.submit(t, read(0x1000, CHUNK)).unwrap();
        assert!(svc.inject_queue_drop(id));
        let completions = svc.drain();
        assert_eq!(completions.len(), 1, "dropped requests still complete");
        assert!(matches!(
            completions[0].payload,
            Err(ShefError::Fault(ShieldFault::QueueDrop { .. }))
        ));
        // Arming an unknown request is a no-op.
        assert!(!svc.inject_queue_drop(RequestId::from_raw(999)));
    }

    #[test]
    fn abort_errors_queued_requests_and_refuses_new_ones() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        let a = register(&mut svc, &mut env, "victim");
        let b = register(&mut svc, &mut env, "bystander");
        svc.submit(a, ServiceRequest::Flush).unwrap();
        svc.submit(b, ServiceRequest::Flush).unwrap();
        svc.abort_tenant(a);
        let completions = svc.drain();
        assert_eq!(completions.len(), 2);
        for c in &completions {
            if c.tenant == a {
                assert!(matches!(
                    c.payload,
                    Err(ShefError::Fault(ShieldFault::TenantAborted { .. }))
                ));
            } else {
                assert!(c.payload.is_ok(), "bystander must be unaffected");
            }
        }
        assert!(svc.submit(a, ServiceRequest::Flush).is_err());
        svc.clear_abort(a);
        svc.submit(a, ServiceRequest::Flush).unwrap();
    }

    #[test]
    fn same_inputs_produce_identical_completion_order_and_clocks() {
        let run = || {
            let (mut svc, mut env) = service(ServiceConfig {
                shards: 2,
                lanes_per_shard: 2,
                ..ServiceConfig::default()
            });
            let a = register(&mut svc, &mut env, "a");
            let b = register(&mut svc, &mut env, "b");
            for i in 0..4u64 {
                svc.submit(a, write(0x1000 + i * CHUNK as u64, vec![i as u8; CHUNK]))
                    .unwrap();
                svc.submit(b, write(0x1000 + i * CHUNK as u64, vec![!i as u8; CHUNK]))
                    .unwrap();
            }
            svc.submit(a, ServiceRequest::Flush).unwrap();
            svc.submit(b, ServiceRequest::Flush).unwrap();
            let order: Vec<(usize, u64)> = svc
                .drain()
                .iter()
                .map(|c| (c.tenant.index(), c.request.raw()))
                .collect();
            let clocks: Vec<Cycles> = (0..svc.shard_count())
                .map(|i| svc.shard(i).clock())
                .collect();
            (order, clocks)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn service_telemetry_reports_admission_and_tenant_scopes() {
        let (mut svc, mut env) = service(ServiceConfig {
            queue_capacity: 1,
            tenant_quota: 1,
            ..ServiceConfig::default()
        });
        let shared = Telemetry::new();
        svc.attach_telemetry(&shared);
        let t = register(&mut svc, &mut env, "alice");
        svc.submit(t, write(0x1000, vec![7; CHUNK])).unwrap();
        assert!(svc.submit(t, ServiceRequest::Flush).is_err());
        svc.drain();
        let report = shared.report();
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n.as_str() == name)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter("shield.service.admitted"), 1);
        assert_eq!(counter("shield.service.admission_rejects"), 1);
        assert_eq!(counter("shield.service.completed"), 1);
        assert_eq!(counter("shield.service.tenant.alice.requests"), 1);
        assert_eq!(counter("shield.service.tenant.alice.rejects"), 1);
        assert_eq!(
            counter("shield.service.tenant.alice.bytes_written"),
            CHUNK as u64
        );
    }

    #[test]
    fn ticket_from_untrusted_verifier_is_rejected() {
        let (mut svc, _env) = service(ServiceConfig::default());
        // A credential from a *different* verifier (rogue attestation
        // environment): structurally a valid AttestedTenant, but not
        // issued by the verifier this service pins.
        let mut rogue = shef_attest::AttestationEnvironment::new(b"rogue-env").unwrap();
        let grant = rogue.onboard("alice", [0x33u8; 32]).unwrap();
        let err = svc
            .register_tenant("alice", tenant_config(), &grant)
            .unwrap_err();
        assert!(matches!(
            err,
            ShefError::Fault(ShieldFault::AttestationRejected { ref tenant, .. })
                if tenant == "alice"
        ));
        assert_eq!(svc.tenant_count(), 0);
    }

    #[test]
    fn credential_bound_to_other_tenant_is_rejected() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        let grant = env.onboard("mallory", [0x33u8; 32]).unwrap();
        let err = svc
            .register_tenant("alice", tenant_config(), &grant)
            .unwrap_err();
        assert!(matches!(
            err,
            ShefError::Fault(ShieldFault::AttestationRejected { .. })
        ));
    }

    #[test]
    fn replayed_attestation_session_is_rejected() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        let grant = env.onboard("alice", [0x33u8; 32]).unwrap();
        svc.register_tenant("alice", tenant_config(), &grant)
            .unwrap();
        // Same credential, fresh name: the session was already admitted.
        let err = svc
            .register_tenant("alice2", tenant_config(), &grant)
            .unwrap_err();
        assert!(matches!(
            err,
            ShefError::Fault(ShieldFault::AttestationRejected { ref reason, .. })
                if reason.contains("replayed")
        ));
    }

    #[test]
    fn attestation_admission_telemetry() {
        let (mut svc, mut env) = service(ServiceConfig::default());
        let shared = Telemetry::new();
        svc.attach_telemetry(&shared);
        register(&mut svc, &mut env, "alice");
        let mut rogue = shef_attest::AttestationEnvironment::new(b"rogue-env").unwrap();
        let bad = rogue.onboard("eve", [0x44u8; 32]).unwrap();
        assert!(svc.register_tenant("eve", tenant_config(), &bad).is_err());
        let report = shared.report();
        assert_eq!(report.counters["shield.attest.admitted"], 1);
        assert_eq!(report.counters["shield.attest.rejected"], 1);
    }
}
