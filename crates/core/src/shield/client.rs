//! Data-Owner-side (client) encryption.
//!
//! "The Data Owner then encrypts sensitive input data in a secure
//! location using the appropriate Data Encryption Key" (§4). The client
//! produces exactly the on-DRAM chunk format the Shield expects
//! ([`super::chunk`]), so the untrusted host can DMA ciphertext and tags
//! straight into place; and it can verify/decrypt region contents the
//! accelerator produced.

use super::chunk::{open_chunk, seal_chunk, CHUNK_TAG_LEN};
use super::config::RegionConfig;
use super::keys::DataEncryptionKey;
use crate::ShefError;

/// An encrypted region image ready for DMA: ciphertext for the data
/// range plus the packed tag array for the region's tag-arena slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedRegion {
    /// Ciphertext, same length as the plaintext (laid out at
    /// `region.range.start`).
    pub ciphertext: Vec<u8>,
    /// Concatenated 16-byte chunk tags (laid out at the region's tag
    /// base).
    pub tags: Vec<u8>,
}

/// Encrypts a full region image at write-epoch `epoch` (0 for initial
/// provisioning).
///
/// # Panics
///
/// Panics if `plaintext` is longer than the region.
#[must_use]
pub fn encrypt_region(
    dek: &DataEncryptionKey,
    region: &RegionConfig,
    plaintext: &[u8],
    epoch: u64,
) -> EncryptedRegion {
    encrypt_region_at(dek, region, 0, plaintext, epoch)
}

/// Like [`encrypt_region`], but for a window starting at chunk
/// `first_chunk` (e.g. one file slot of a larger store region).
#[must_use]
pub fn encrypt_region_at(
    dek: &DataEncryptionKey,
    region: &RegionConfig,
    first_chunk: u32,
    plaintext: &[u8],
    epoch: u64,
) -> EncryptedRegion {
    assert!(
        plaintext.len() as u64 <= region.range.len,
        "plaintext ({}) exceeds region '{}' ({} bytes)",
        plaintext.len(),
        region.name,
        region.range.len
    );
    // A partial image must still be chunk-aligned: the Shield verifies
    // whole C_mem chunks, so a short final chunk anywhere but the region
    // end would never authenticate on the device.
    assert!(
        plaintext.len().is_multiple_of(region.engine_set.chunk_size)
            || plaintext.len() as u64 == region.range.len,
        "plaintext for region '{}' must be a multiple of the {}-byte chunk size \
         (pad it; the Shield authenticates whole chunks)",
        region.name,
        region.engine_set.chunk_size
    );
    let key = dek.region_key(region);
    let nonce = dek.region_nonce(region);
    let chunk = region.engine_set.chunk_size;
    let mut ciphertext = Vec::with_capacity(plaintext.len());
    let mut tags = Vec::new();
    for (i, pt) in plaintext.chunks(chunk).enumerate() {
        let idx = first_chunk + i as u32;
        let (ct, tag) = seal_chunk(&key, nonce, &region.name, idx, epoch, pt);
        ciphertext.extend_from_slice(&ct);
        tags.extend_from_slice(&tag);
    }
    EncryptedRegion { ciphertext, tags }
}

/// Verifies and decrypts a region image read back from device memory.
///
/// `epochs` gives the expected write epoch per chunk; pass
/// [`uniform_epochs`] when all chunks share one epoch.
///
/// # Errors
///
/// Returns [`ShefError::IntegrityViolation`] if any chunk fails
/// authentication (spoofed/spliced/replayed output).
pub fn decrypt_region(
    dek: &DataEncryptionKey,
    region: &RegionConfig,
    ciphertext: &[u8],
    tags: &[u8],
    epochs: &dyn Fn(u32) -> u64,
) -> Result<Vec<u8>, ShefError> {
    decrypt_region_at(dek, region, 0, ciphertext, tags, epochs)
}

/// Like [`decrypt_region`], but for a window starting at chunk
/// `first_chunk`.
///
/// # Errors
///
/// Same conditions as [`decrypt_region`].
pub fn decrypt_region_at(
    dek: &DataEncryptionKey,
    region: &RegionConfig,
    first_chunk: u32,
    ciphertext: &[u8],
    tags: &[u8],
    epochs: &dyn Fn(u32) -> u64,
) -> Result<Vec<u8>, ShefError> {
    let key = dek.region_key(region);
    let nonce = dek.region_nonce(region);
    let chunk = region.engine_set.chunk_size;
    let n_chunks = ciphertext.len().div_ceil(chunk);
    if tags.len() < n_chunks * CHUNK_TAG_LEN {
        return Err(ShefError::Malformed(format!(
            "tag array too short: {} chunks need {} bytes, got {}",
            n_chunks,
            n_chunks * CHUNK_TAG_LEN,
            tags.len()
        )));
    }
    let mut plaintext = Vec::with_capacity(ciphertext.len());
    for (i, ct) in ciphertext.chunks(chunk).enumerate() {
        let idx = first_chunk + i as u32;
        let tag: [u8; CHUNK_TAG_LEN] = tags[i * CHUNK_TAG_LEN..(i + 1) * CHUNK_TAG_LEN]
            .try_into()
            .expect("length checked above");
        let pt = open_chunk(&key, nonce, &region.name, idx, epochs(idx), ct, &tag)?;
        plaintext.extend_from_slice(&pt);
    }
    Ok(plaintext)
}

/// Epoch function for regions whose chunks all share one epoch.
pub fn uniform_epochs(epoch: u64) -> impl Fn(u32) -> u64 {
    move |_| epoch
}

/// Number of tag bytes for a plaintext of `len` bytes under `chunk_size`.
#[must_use]
pub fn tag_bytes_for(len: usize, chunk_size: usize) -> usize {
    len.div_ceil(chunk_size) * CHUNK_TAG_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::config::{EngineSetConfig, MemRange};

    fn region() -> RegionConfig {
        RegionConfig {
            name: "input".into(),
            range: MemRange::new(0, 8192),
            engine_set: EngineSetConfig::default(),
        }
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let r = region();
        let data: Vec<u8> = (0..5120u32).map(|i| (i % 253) as u8).collect();
        let enc = encrypt_region(&dek, &r, &data, 0);
        assert_eq!(enc.ciphertext.len(), data.len());
        assert_eq!(enc.tags.len(), tag_bytes_for(data.len(), 512));
        let dec = decrypt_region(&dek, &r, &enc.ciphertext, &enc.tags, &uniform_epochs(0)).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn tampered_ciphertext_detected() {
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let r = region();
        let mut enc = encrypt_region(&dek, &r, &[7u8; 1024], 0);
        enc.ciphertext[600] ^= 1;
        assert!(decrypt_region(&dek, &r, &enc.ciphertext, &enc.tags, &uniform_epochs(0)).is_err());
    }

    #[test]
    fn wrong_epoch_detected() {
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let r = region();
        let enc = encrypt_region(&dek, &r, &[7u8; 1024], 0);
        assert!(decrypt_region(&dek, &r, &enc.ciphertext, &enc.tags, &uniform_epochs(1)).is_err());
    }

    #[test]
    fn short_tag_array_rejected() {
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let r = region();
        let enc = encrypt_region(&dek, &r, &[7u8; 1024], 0);
        assert!(matches!(
            decrypt_region(
                &dek,
                &r,
                &enc.ciphertext,
                &enc.tags[..16],
                &uniform_epochs(0)
            ),
            Err(ShefError::Malformed(_))
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn oversized_plaintext_panics() {
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let r = region();
        let _ = encrypt_region(&dek, &r, &vec![0u8; 10_000], 0);
    }

    #[test]
    fn per_chunk_epochs() {
        let dek = DataEncryptionKey::from_bytes([8u8; 32]);
        let r = region();
        // Chunk 0 at epoch 2, chunk 1 at epoch 5.
        let key = dek.region_key(&r);
        let nonce = dek.region_nonce(&r);
        let (c0, t0) = super::super::chunk::seal_chunk(&key, nonce, &r.name, 0, 2, &[1u8; 512]);
        let (c1, t1) = super::super::chunk::seal_chunk(&key, nonce, &r.name, 1, 5, &[2u8; 512]);
        let mut ct = c0;
        ct.extend_from_slice(&c1);
        let mut tags = t0.to_vec();
        tags.extend_from_slice(&t1);
        let epochs = |i: u32| if i == 0 { 2 } else { 5 };
        let out = decrypt_region(&dek, &r, &ct, &tags, &epochs).unwrap();
        assert_eq!(&out[..512], &[1u8; 512][..]);
        assert_eq!(&out[512..], &[2u8; 512][..]);
    }
}
