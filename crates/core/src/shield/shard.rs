//! One shard of the multi-tenant Shield service.
//!
//! A shard bundles a [`WorkerPool`] (the crypto lanes every tenant
//! assigned to the shard shares) with a per-shard logical clock and a
//! FIFO of coalesced, admitted requests. The service's scheduler is a
//! min-clock arbiter over shards: each dispatch goes to the shard whose
//! clock is furthest behind (ties broken by shard index), and the
//! dispatched request's modelled busy cycles — plus a fixed
//! [arbitration cost](super::timing::shard_dispatch_cost) — advance the
//! clock. Both inputs are model-derived, so scheduling is a pure
//! function of the submitted request sequence: same-seed runs are
//! byte-identical, which is what lets CI diff service-level output.

use std::collections::VecDeque;

use shef_fpga::clock::Cycles;
use shef_telemetry::Telemetry;

use super::pool::WorkerPool;
use super::service::PendingRequest;
use super::timing::shard_dispatch_cost;

/// One shard: shared worker lanes, a logical clock, and the FIFO of
/// requests coalesced onto it (admission order preserved per shard).
pub struct ShieldShard {
    index: usize,
    pool: WorkerPool,
    clock: Cycles,
    queue: VecDeque<PendingRequest>,
    dispatched: u64,
}

impl core::fmt::Debug for ShieldShard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShieldShard")
            .field("index", &self.index)
            .field("lanes", &self.pool.lanes())
            .field("clock", &self.clock)
            .field("queued", &self.queue.len())
            .field("dispatched", &self.dispatched)
            .finish()
    }
}

impl ShieldShard {
    /// Builds shard `index` with `lanes` worker lanes (clamped to ≥ 1
    /// by [`WorkerPool::new`]).
    #[must_use]
    pub fn new(index: usize, lanes: usize) -> Self {
        ShieldShard {
            index,
            pool: WorkerPool::new(lanes),
            clock: Cycles::ZERO,
            queue: VecDeque::new(),
            dispatched: 0,
        }
    }

    /// The shard's position in the service's shard vector.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Worker lanes this shard fans chunk crypto across.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.pool.lanes()
    }

    /// The shared worker pool (also the fault-injection surface: the
    /// pool's `arm_lane_panic*` hooks take `&self`).
    #[must_use]
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Attaches the pool's `shield.pool.*` instruments to a shared
    /// registry (first attach wins; see [`WorkerPool::attach_telemetry`]).
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        self.pool.attach_telemetry(telemetry);
    }

    /// The shard's logical clock: accumulated dispatch cost of every
    /// request it has executed.
    #[must_use]
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// Appends an admitted request to the shard FIFO.
    pub fn enqueue(&mut self, request: PendingRequest) {
        self.queue.push_back(request);
    }

    /// Requests currently coalesced onto this shard.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the shard has undispatched work.
    #[must_use]
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Pops the shard's head-of-line request.
    pub fn pop(&mut self) -> Option<PendingRequest> {
        self.queue.pop_front()
    }

    /// Advances the shard clock past one dispatched request that kept
    /// the tenant's datapath busy for `request_busy` modelled cycles.
    pub fn advance(&mut self, request_busy: Cycles) {
        self.clock += shard_dispatch_cost(request_busy);
        self.dispatched += 1;
    }

    /// Requests this shard has dispatched since construction.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::super::service::{PendingRequest, RequestId, ServiceRequest, TenantId};
    use super::super::timing::SHARD_ARBITRATION_CYCLES;
    use super::*;

    fn pending(id: u64) -> PendingRequest {
        PendingRequest {
            id: RequestId::from_raw(id),
            tenant: TenantId::from_index(0),
            request: ServiceRequest::Flush,
        }
    }

    #[test]
    fn fifo_preserves_admission_order() {
        let mut shard = ShieldShard::new(0, 2);
        shard.enqueue(pending(1));
        shard.enqueue(pending(2));
        assert_eq!(shard.queue_len(), 2);
        assert_eq!(shard.pop().unwrap().id, RequestId::from_raw(1));
        assert_eq!(shard.pop().unwrap().id, RequestId::from_raw(2));
        assert!(!shard.has_work());
    }

    #[test]
    fn clock_always_advances_even_on_free_requests() {
        let mut shard = ShieldShard::new(3, 1);
        assert_eq!(shard.clock(), Cycles::ZERO);
        shard.advance(Cycles::ZERO);
        assert_eq!(shard.clock(), Cycles(SHARD_ARBITRATION_CYCLES + 1));
        shard.advance(Cycles(97));
        assert_eq!(shard.clock(), Cycles(2 * SHARD_ARBITRATION_CYCLES + 1 + 97));
        assert_eq!(shard.dispatched(), 2);
        assert_eq!(shard.index(), 3);
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        assert_eq!(ShieldShard::new(0, 0).lanes(), 1);
    }
}
