//! Bonsai Merkle Tree freshness — the CPU-TEE baseline of §5.2.2.
//!
//! Secure processors protect against replay with Merkle trees over
//! counters (Bonsai Merkle Trees, Rogers et al. \[77\]): counters live in
//! DRAM, a hash tree authenticates them, and only the root is kept
//! on-chip. The paper argues this is a poor fit for FPGAs — "Merkle
//! Trees are expensive for FPGA designs that need to access every tree
//! node from DRAM, unlike CPUs that can benefit from multiple tiers of
//! caches" — and proposes on-chip counters instead ("only one extra
//! DRAM access is needed, eliminating excessive off-chip accesses
//! associated with Merkle Trees").
//!
//! This module implements that baseline faithfully so the claim can be
//! measured (see the `integrity_ablation` bench): a [`MerkleTree`] keeps
//! per-chunk write counters in device DRAM, organized as an arity-`A`
//! hash tree whose 16-byte root digest lives on-chip. Every counter read
//! verifies a path of tree nodes against the root; every counter bump
//! rewrites the path. An optional on-chip *verified-node cache* models
//! what a CPU's cache hierarchy provides for free — with it, path
//! verification stops at the first cached (already-trusted) ancestor.
//!
//! Selecting the scheme is an [`EngineSetConfig`] knob
//! (`merkle: Some(MerkleConfig { .. })`), mutually exclusive with the
//! on-chip `counters` flag, so the two replay defences can be swapped
//! per region like any other Shield parameter.
//!
//! [`EngineSetConfig`]: super::config::EngineSetConfig

use std::collections::HashMap;
use std::collections::VecDeque;

use shef_crypto::hmac::hmac_sha256_multi;
use shef_fpga::clock::{CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

use super::engine::AccessMode;
use super::timing::{
    merkle_block_cost, PORT_READ_LANE, PORT_WRITE_LANE, SHELL_PORT_BYTES_PER_CYCLE,
};
use crate::wire::{Reader, Writer};
use crate::ShefError;

/// Bytes of each node digest (matches the chunk-tag width).
pub const NODE_DIGEST_LEN: usize = 16;
/// Bytes of each counter (64-bit write epochs, as in the on-chip scheme).
pub const COUNTER_LEN: usize = 8;
/// Domain-separation label for node digests.
const NODE_LABEL: &[u8] = b"shef.bmt.node.v1";

/// Compile-time parameters of a Bonsai Merkle Tree engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MerkleConfig {
    /// Tree arity: counters per leaf block and children per internal
    /// node. Higher arity means shallower trees (fewer DRAM accesses
    /// per path) but larger nodes (more bytes and hash work per access).
    pub arity: usize,
    /// On-chip verified-node cache capacity in bytes (0 disables the
    /// cache — the paper's "every tree node from DRAM" case).
    pub node_cache_bytes: usize,
}

impl Default for MerkleConfig {
    fn default() -> Self {
        MerkleConfig {
            arity: 8,
            node_cache_bytes: 0,
        }
    }
}

impl MerkleConfig {
    /// Validates arity bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] for an arity outside `2..=64`.
    pub fn validate(&self) -> Result<(), ShefError> {
        if !(2..=64).contains(&self.arity) {
            return Err(ShefError::InvalidConfig(format!(
                "merkle arity {} outside 2..=64",
                self.arity
            )));
        }
        Ok(())
    }

    /// Bytes of one internal node (`arity` child digests).
    #[must_use]
    pub fn node_bytes(&self) -> usize {
        self.arity * NODE_DIGEST_LEN
    }

    /// Bytes of one leaf block (`arity` counters).
    #[must_use]
    pub fn leaf_bytes(&self) -> usize {
        self.arity * COUNTER_LEN
    }

    pub(crate) fn serialize(&self, w: &mut Writer) {
        w.put_u32(self.arity as u32);
        w.put_u64(self.node_cache_bytes as u64);
    }

    pub(crate) fn deserialize(r: &mut Reader<'_>) -> Result<Self, ShefError> {
        Ok(MerkleConfig {
            arity: r.get_u32()? as usize,
            node_cache_bytes: r.get_u64()? as usize,
        })
    }
}

/// Per-level geometry: where a level's blocks live and how many there are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Level {
    /// DRAM offset of the level's first block, relative to the tree base.
    offset: u64,
    /// Number of blocks in this level.
    blocks: u64,
    /// Bytes per block at this level.
    block_bytes: usize,
}

/// Runtime statistics of one tree (exposed to tests and benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MerkleStats {
    /// Tree-node blocks fetched from DRAM.
    pub node_reads: u64,
    /// Tree-node blocks written back to DRAM.
    pub node_writes: u64,
    /// Path steps served by the verified-node cache.
    pub cache_hits: u64,
    /// Digest mismatches detected (tamper/replay attempts).
    pub verify_failures: u64,
}

/// A Bonsai Merkle Tree over one region's chunk counters.
///
/// The tree is *write-through*: every counter bump updates DRAM and the
/// on-chip root before returning, so a crash or power cut never leaves
/// the root out of sync with device memory.
pub struct MerkleTree {
    cfg: MerkleConfig,
    key: [u8; 32],
    base: u64,
    num_counters: u64,
    /// Level 0 = leaf blocks of counters; last level = single top block.
    levels: Vec<Level>,
    /// On-chip root digest over the top block.
    root: [u8; NODE_DIGEST_LEN],
    /// Verified-node cache: `(level, block index)` → block bytes.
    cache: HashMap<(u8, u64), Vec<u8>>,
    lru: VecDeque<(u8, u64)>,
    cache_capacity_blocks: usize,
    initialized: bool,
    lane: String,
    stats: MerkleStats,
}

impl core::fmt::Debug for MerkleTree {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MerkleTree")
            .field("counters", &self.num_counters)
            .field("depth", &self.levels.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MerkleTree {
    /// Lays out a tree for `num_counters` chunk counters at DRAM address
    /// `base`, keyed by the region's tree key.
    ///
    /// # Panics
    ///
    /// Panics if `num_counters` is zero or `cfg` fails validation; the
    /// Shield validates configurations before instantiating engines.
    #[must_use]
    pub fn new(cfg: MerkleConfig, key: [u8; 32], base: u64, num_counters: u64, lane: &str) -> Self {
        assert!(num_counters > 0, "merkle tree needs at least one counter");
        cfg.validate()
            .expect("config validated before engine construction");
        let mut levels = Vec::new();
        let arity = cfg.arity as u64;
        let mut offset = 0u64;
        let mut blocks = num_counters.div_ceil(arity);
        levels.push(Level {
            offset,
            blocks,
            block_bytes: cfg.leaf_bytes(),
        });
        offset += blocks * cfg.leaf_bytes() as u64;
        while blocks > 1 {
            blocks = blocks.div_ceil(arity);
            levels.push(Level {
                offset,
                blocks,
                block_bytes: cfg.node_bytes(),
            });
            offset += blocks * cfg.node_bytes() as u64;
        }
        let cache_capacity_blocks = if cfg.node_cache_bytes == 0 {
            0
        } else {
            (cfg.node_cache_bytes / cfg.node_bytes()).max(1)
        };
        MerkleTree {
            cfg,
            key,
            base,
            num_counters,
            levels,
            root: [0u8; NODE_DIGEST_LEN],
            cache: HashMap::new(),
            lru: VecDeque::new(),
            cache_capacity_blocks,
            initialized: false,
            lane: lane.to_owned(),
            stats: MerkleStats::default(),
        }
    }

    /// Tree depth in levels (1 = a single leaf block under the root).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total DRAM footprint of the tree in bytes.
    #[must_use]
    pub fn dram_bytes(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.blocks * l.block_bytes as u64)
            .sum()
    }

    /// Runtime statistics.
    #[must_use]
    pub fn stats(&self) -> MerkleStats {
        self.stats
    }

    /// Drops all cached (verified) nodes — models a context switch or
    /// power event; used by tests to force re-verification from DRAM.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.lru.clear();
    }

    fn digest(&self, level: u8, index: u64, block: &[u8]) -> [u8; NODE_DIGEST_LEN] {
        let full = hmac_sha256_multi(
            &self.key,
            &[NODE_LABEL, &[level], &index.to_be_bytes(), block],
        );
        full[..NODE_DIGEST_LEN].try_into().expect("truncate to 16")
    }

    fn block_addr(&self, level: usize, index: u64) -> u64 {
        let l = &self.levels[level];
        self.base + l.offset + index * l.block_bytes as u64
    }

    fn top_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Lazily writes the all-zero tree on first use. Counters start at
    /// zero, matching the Data Owner's epoch-0 provisioning; the zero
    /// tree makes that state authentic. Provision-time work is not
    /// charged to the ledger.
    fn ensure_init(&mut self, shell: &mut Shell, dram: &mut Dram) -> Result<(), ShefError> {
        if self.initialized {
            return Ok(());
        }
        let mut child_digests: Vec<[u8; NODE_DIGEST_LEN]> = Vec::new();
        for level in 0..self.levels.len() {
            let info = self.levels[level];
            let mut digests = Vec::with_capacity(info.blocks as usize);
            for index in 0..info.blocks {
                let mut block = vec![0u8; info.block_bytes];
                if level > 0 {
                    // Fill child-digest entries computed for the level below.
                    let first_child = index * self.cfg.arity as u64;
                    for slot in 0..self.cfg.arity as u64 {
                        let child = first_child + slot;
                        if let Some(d) = child_digests.get(child as usize) {
                            let at = slot as usize * NODE_DIGEST_LEN;
                            block[at..at + NODE_DIGEST_LEN].copy_from_slice(d);
                        }
                    }
                }
                shell.mem_write(dram, self.block_addr(level, index), &block)?;
                digests.push(self.digest(level as u8, index, &block));
            }
            child_digests = digests;
        }
        self.root = child_digests[0];
        self.initialized = true;
        Ok(())
    }

    fn charge_read(&self, ledger: &mut CostLedger, block_bytes: usize, mode: AccessMode) {
        ledger.add_busy(
            PORT_READ_LANE,
            Cycles((block_bytes as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        let cost = merkle_block_cost(block_bytes);
        match mode {
            AccessMode::Streaming => ledger.add_busy(&self.lane, cost.lane),
            AccessMode::Blocking => ledger.add_serial(cost.latency),
        }
    }

    fn charge_write(&self, ledger: &mut CostLedger, block_bytes: usize, mode: AccessMode) {
        ledger.add_busy(
            PORT_WRITE_LANE,
            Cycles((block_bytes as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        let cost = merkle_block_cost(block_bytes);
        match mode {
            AccessMode::Streaming => ledger.add_busy(&self.lane, cost.lane),
            AccessMode::Blocking => ledger.add_serial(cost.latency),
        }
    }

    fn cache_insert(&mut self, level: u8, index: u64, block: Vec<u8>) {
        if self.cache_capacity_blocks == 0 {
            return;
        }
        let key = (level, index);
        if self.cache.insert(key, block).is_none() {
            self.lru.push_back(key);
        } else if let Some(pos) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(pos);
            self.lru.push_back(key);
        }
        while self.cache.len() > self.cache_capacity_blocks {
            if let Some(victim) = self.lru.pop_front() {
                self.cache.remove(&victim);
            }
        }
    }

    /// Fetches and authenticates the block at `(level, index)`. A block
    /// is trusted if it is cached, or if its digest matches the entry in
    /// its trusted parent (recursively, up to the on-chip root).
    fn load_verified(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        level: usize,
        index: u64,
        mode: AccessMode,
    ) -> Result<Vec<u8>, ShefError> {
        if let Some(block) = self.cache.get(&(level as u8, index)) {
            self.stats.cache_hits += 1;
            // On-chip SRAM read: one beat.
            ledger.add_busy(&self.lane, Cycles(1));
            return Ok(block.clone());
        }
        let info = self.levels[level];
        let block = shell.mem_read(dram, self.block_addr(level, index), info.block_bytes)?;
        self.stats.node_reads += 1;
        self.charge_read(ledger, info.block_bytes, mode);
        let digest = self.digest(level as u8, index, &block);
        let expected: [u8; NODE_DIGEST_LEN] = if level == self.top_level() {
            self.root
        } else {
            let parent = self.load_verified(
                shell,
                dram,
                ledger,
                level + 1,
                index / self.cfg.arity as u64,
                mode,
            )?;
            let slot = (index % self.cfg.arity as u64) as usize * NODE_DIGEST_LEN;
            parent[slot..slot + NODE_DIGEST_LEN]
                .try_into()
                .expect("digest slot")
        };
        if !shef_crypto::ct::eq(&digest, &expected) {
            self.stats.verify_failures += 1;
            return Err(ShefError::IntegrityViolation(format!(
                "merkle node (level {level}, block {index}) failed verification"
            )));
        }
        self.cache_insert(level as u8, index, block.clone());
        Ok(block)
    }

    /// Reads the authenticated counter for chunk `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] if any node on the path
    /// fails verification, and propagates DRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the tree (engine-set bounds enforce
    /// this).
    pub fn counter(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<u64, ShefError> {
        assert!(
            (idx as u64) < self.num_counters,
            "counter index out of range"
        );
        self.ensure_init(shell, dram)?;
        let arity = self.cfg.arity as u64;
        let leaf = self.load_verified(shell, dram, ledger, 0, idx as u64 / arity, mode)?;
        let at = (idx as u64 % arity) as usize * COUNTER_LEN;
        Ok(u64::from_le_bytes(
            leaf[at..at + COUNTER_LEN].try_into().expect("counter slot"),
        ))
    }

    /// Increments the counter for chunk `idx`, rewriting the leaf and
    /// every ancestor node, and returns the new value.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] if the pre-update path
    /// fails verification, and propagates DRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the tree.
    pub fn bump(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<u64, ShefError> {
        assert!(
            (idx as u64) < self.num_counters,
            "counter index out of range"
        );
        self.ensure_init(shell, dram)?;
        let arity = self.cfg.arity as u64;
        // Verify-then-update: the current path must be authentic before
        // we derive the new state from it.
        let mut block = self.load_verified(shell, dram, ledger, 0, idx as u64 / arity, mode)?;
        let at = (idx as u64 % arity) as usize * COUNTER_LEN;
        let new_value = u64::from_le_bytes(
            block[at..at + COUNTER_LEN]
                .try_into()
                .expect("counter slot"),
        ) + 1;
        block[at..at + COUNTER_LEN].copy_from_slice(&new_value.to_le_bytes());

        let mut index = idx as u64 / arity;
        let mut level = 0usize;
        loop {
            let info = self.levels[level];
            shell.mem_write(dram, self.block_addr(level, index), &block)?;
            self.stats.node_writes += 1;
            self.charge_write(ledger, info.block_bytes, mode);
            let digest = self.digest(level as u8, index, &block);
            self.cache_insert(level as u8, index, block.clone());
            if level == self.top_level() {
                self.root = digest;
                break;
            }
            // Splice the fresh digest into the (verified) parent.
            let parent_index = index / arity;
            let mut parent =
                self.load_verified(shell, dram, ledger, level + 1, parent_index, mode)?;
            let slot = (index % arity) as usize * NODE_DIGEST_LEN;
            parent[slot..slot + NODE_DIGEST_LEN].copy_from_slice(&digest);
            block = parent;
            index = parent_index;
            level += 1;
        }
        Ok(new_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(num_counters: u64, cfg: MerkleConfig) -> (MerkleTree, Shell, Dram, CostLedger) {
        let tree = MerkleTree::new(cfg, [0x42u8; 32], 0x10_0000, num_counters, "test.merkle");
        (tree, Shell::new(), Dram::new(1 << 24), CostLedger::new())
    }

    #[test]
    fn counters_start_at_zero() {
        let (mut t, mut sh, mut dram, mut led) = setup(100, MerkleConfig::default());
        for idx in [0u32, 7, 50, 99] {
            assert_eq!(
                t.counter(&mut sh, &mut dram, &mut led, idx, AccessMode::Streaming)
                    .unwrap(),
                0
            );
        }
    }

    #[test]
    fn bump_round_trip() {
        let (mut t, mut sh, mut dram, mut led) = setup(64, MerkleConfig::default());
        assert_eq!(
            t.bump(&mut sh, &mut dram, &mut led, 3, AccessMode::Streaming)
                .unwrap(),
            1
        );
        assert_eq!(
            t.bump(&mut sh, &mut dram, &mut led, 3, AccessMode::Streaming)
                .unwrap(),
            2
        );
        assert_eq!(
            t.counter(&mut sh, &mut dram, &mut led, 3, AccessMode::Streaming)
                .unwrap(),
            2
        );
        // Neighbours are untouched.
        assert_eq!(
            t.counter(&mut sh, &mut dram, &mut led, 2, AccessMode::Streaming)
                .unwrap(),
            0
        );
        assert_eq!(
            t.counter(&mut sh, &mut dram, &mut led, 4, AccessMode::Streaming)
                .unwrap(),
            0
        );
    }

    #[test]
    fn depth_scales_with_arity_and_size() {
        // 8 counters, arity 8 → one leaf block directly under the root.
        let t = MerkleTree::new(MerkleConfig::default(), [0; 32], 0, 8, "l");
        assert_eq!(t.depth(), 1);
        // 9 counters need 2 leaf blocks → one internal level.
        let t = MerkleTree::new(MerkleConfig::default(), [0; 32], 0, 9, "l");
        assert_eq!(t.depth(), 2);
        // 8^3 counters, arity 8 → 3 levels.
        let t = MerkleTree::new(MerkleConfig::default(), [0; 32], 0, 512, "l");
        assert_eq!(t.depth(), 3);
        // Same counters at arity 64 → shallower.
        let cfg = MerkleConfig {
            arity: 64,
            node_cache_bytes: 0,
        };
        let t = MerkleTree::new(cfg, [0; 32], 0, 512, "l");
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn dram_footprint_matches_layout() {
        // 64 counters, arity 8: 8 leaf blocks × 64 B + 1 top block × 128 B.
        let t = MerkleTree::new(MerkleConfig::default(), [0; 32], 0, 64, "l");
        assert_eq!(t.dram_bytes(), 8 * 64 + 128);
    }

    #[test]
    fn counter_tamper_detected() {
        let (mut t, mut sh, mut dram, mut led) = setup(512, MerkleConfig::default());
        t.bump(&mut sh, &mut dram, &mut led, 10, AccessMode::Streaming)
            .unwrap();
        // Adversary edits the raw counter in DRAM.
        let addr = t.block_addr(0, 10 / 8) + (10 % 8) * COUNTER_LEN as u64;
        dram.tamper_write(addr, &999u64.to_le_bytes());
        let err = t
            .counter(&mut sh, &mut dram, &mut led, 10, AccessMode::Streaming)
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
        assert_eq!(t.stats().verify_failures, 1);
    }

    #[test]
    fn internal_node_tamper_detected() {
        let (mut t, mut sh, mut dram, mut led) = setup(512, MerkleConfig::default());
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        // Flip one byte of a level-1 node.
        let addr = t.block_addr(1, 0);
        let mut byte = dram.tamper_read(addr, 1);
        byte[0] ^= 0x01;
        dram.tamper_write(addr, &byte);
        let err = t
            .counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn replaying_whole_path_detected() {
        // Snapshot the entire tree state, bump, restore the snapshot:
        // the on-chip root no longer matches — replay is caught even
        // though every node is internally consistent.
        let (mut t, mut sh, mut dram, mut led) = setup(64, MerkleConfig::default());
        t.counter(&mut sh, &mut dram, &mut led, 5, AccessMode::Streaming)
            .unwrap();
        let snapshot = dram.tamper_read(0x10_0000, t.dram_bytes() as usize);
        t.bump(&mut sh, &mut dram, &mut led, 5, AccessMode::Streaming)
            .unwrap();
        dram.tamper_write(0x10_0000, &snapshot);
        let err = t
            .counter(&mut sh, &mut dram, &mut led, 5, AccessMode::Streaming)
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn node_splice_detected() {
        // Copying leaf block 0 over leaf block 1 must fail: digests bind
        // the block index.
        let (mut t, mut sh, mut dram, mut led) = setup(64, MerkleConfig::default());
        t.bump(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        let b0 = dram.tamper_read(t.block_addr(0, 0), 64);
        dram.tamper_write(t.block_addr(0, 1), &b0);
        let err = t
            .counter(&mut sh, &mut dram, &mut led, 8, AccessMode::Streaming)
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn cache_reduces_node_reads() {
        let cached = MerkleConfig {
            arity: 8,
            node_cache_bytes: 64 * 1024,
        };
        let (mut t, mut sh, mut dram, mut led) = setup(512, cached);
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        let after_first = t.stats().node_reads;
        // Second read of the same counter: full path cached.
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        assert_eq!(t.stats().node_reads, after_first);
        assert!(t.stats().cache_hits >= 1);
        // A sibling counter in the same leaf block also hits.
        t.counter(&mut sh, &mut dram, &mut led, 1, AccessMode::Streaming)
            .unwrap();
        assert_eq!(t.stats().node_reads, after_first);
    }

    #[test]
    fn uncached_tree_reads_full_path_every_time() {
        let (mut t, mut sh, mut dram, mut led) = setup(512, MerkleConfig::default());
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        let d = t.depth() as u64;
        assert_eq!(t.stats().node_reads, d);
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        assert_eq!(t.stats().node_reads, 2 * d, "no cache → repeat full path");
    }

    #[test]
    fn cache_eviction_bounds_capacity() {
        // Cache sized for exactly one node block.
        let cfg = MerkleConfig {
            arity: 8,
            node_cache_bytes: 128,
        };
        let (mut t, mut sh, mut dram, mut led) = setup(512, cfg);
        for idx in 0..64u32 {
            t.counter(&mut sh, &mut dram, &mut led, idx, AccessMode::Streaming)
                .unwrap();
        }
        assert!(t.cache.len() <= t.cache_capacity_blocks);
    }

    #[test]
    fn clear_cache_forces_reverification() {
        let cfg = MerkleConfig {
            arity: 8,
            node_cache_bytes: 64 * 1024,
        };
        let (mut t, mut sh, mut dram, mut led) = setup(64, cfg);
        t.bump(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        // With the path cached, DRAM tampering is invisible (reads are
        // served on-chip) …
        let snapshot = dram.tamper_read(0x10_0000, t.dram_bytes() as usize);
        t.bump(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        dram.tamper_write(0x10_0000, &snapshot);
        assert_eq!(
            t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
                .unwrap(),
            2
        );
        // … but any DRAM-backed re-read catches it.
        t.clear_cache();
        assert!(t
            .counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .is_err());
    }

    #[test]
    fn bump_charges_more_than_read() {
        let (mut t, mut sh, mut dram, mut led) = setup(512, MerkleConfig::default());
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Streaming)
            .unwrap();
        let read_lane = led.lane("test.merkle");
        let mut led2 = CostLedger::new();
        t.bump(&mut sh, &mut dram, &mut led2, 0, AccessMode::Streaming)
            .unwrap();
        assert!(
            led2.lane("test.merkle") > read_lane,
            "bump rewrites the path"
        );
    }

    #[test]
    fn blocking_mode_charges_serial_latency() {
        let (mut t, mut sh, mut dram, mut led) = setup(512, MerkleConfig::default());
        let before = led.serial();
        t.counter(&mut sh, &mut dram, &mut led, 0, AccessMode::Blocking)
            .unwrap();
        assert!(led.serial() > before);
    }

    #[test]
    fn many_counters_consistent_with_reference() {
        let (mut t, mut sh, mut dram, mut led) = setup(
            200,
            MerkleConfig {
                arity: 4,
                node_cache_bytes: 512,
            },
        );
        let mut reference = vec![0u64; 200];
        // Deterministic pseudo-random bump pattern.
        let mut state = 0x9e3779b9u64;
        for _ in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let idx = (state >> 33) as u32 % 200;
            reference[idx as usize] += 1;
            t.bump(&mut sh, &mut dram, &mut led, idx, AccessMode::Streaming)
                .unwrap();
        }
        for (idx, &expect) in reference.iter().enumerate() {
            assert_eq!(
                t.counter(
                    &mut sh,
                    &mut dram,
                    &mut led,
                    idx as u32,
                    AccessMode::Streaming
                )
                .unwrap(),
                expect
            );
        }
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = MerkleConfig {
            arity: 16,
            node_cache_bytes: 4096,
        };
        let mut w = Writer::new();
        cfg.serialize(&mut w);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(MerkleConfig::deserialize(&mut r).unwrap(), cfg);
    }

    #[test]
    fn bad_arity_rejected() {
        assert!(MerkleConfig {
            arity: 1,
            node_cache_bytes: 0
        }
        .validate()
        .is_err());
        assert!(MerkleConfig {
            arity: 65,
            node_cache_bytes: 0
        }
        .validate()
        .is_err());
        assert!(MerkleConfig {
            arity: 2,
            node_cache_bytes: 0
        }
        .validate()
        .is_ok());
    }
}
