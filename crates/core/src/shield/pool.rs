//! Hand-rolled worker pool backing the parallel chunk-crypto datapath.
//!
//! The paper's Shield gets its throughput from *replicated* engine sets
//! (§5.2.2, §6): several AES/MAC engine groups seal and open memory
//! chunks concurrently. This module is the execution substrate for that
//! replication in the simulator: a fixed set of worker lanes
//! (`std::thread` + `mpsc` channels — the workspace builds offline, so
//! no rayon/crossbeam) that chunk-crypto batches are fanned across.
//!
//! Determinism contract: [`WorkerPool::run`] returns results in the
//! exact order of the submitted jobs regardless of which lane executed
//! what or in which order lanes finished. All *modelled* cost accounting
//! (see [`super::timing::parallel_batch_cost`]) is computed from a
//! deterministic round-robin lane assignment, never from real-thread
//! scheduling, so cycle ledgers and engine-set statistics are
//! bit-reproducible run to run. Only the observability counters in
//! [`PoolStats`] reflect real scheduling.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError};
use std::thread;

use shef_telemetry::{Counter, Telemetry};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pre-resolved telemetry handles for the pool.
///
/// Everything here is *model-derived* and therefore deterministic: jobs
/// and batches count submissions, the per-lane dispatch counters follow
/// the same round-robin assignment as the timing model
/// ([`super::timing::parallel_batch_cost`]), and panic/retry counters
/// are addressed by submission index. Real-scheduling quantities
/// (`jobs_per_lane`, `queue_high_water`) stay in [`PoolStats`] and are
/// deliberately NOT mirrored — they would break the byte-identical
/// report guarantee.
#[derive(Debug)]
struct PoolTelemetry {
    batches: Counter,
    jobs: Counter,
    lane_panics: Counter,
    recovered_retries: Counter,
    failed_jobs: Counter,
    lane_dispatch: Vec<Counter>,
}

impl PoolTelemetry {
    fn bind(t: &Telemetry, lanes: usize) -> Self {
        PoolTelemetry {
            batches: t.counter("shield.pool.batches"),
            jobs: t.counter("shield.pool.jobs"),
            lane_panics: t.counter("shield.pool.lane_panics"),
            recovered_retries: t.counter("shield.pool.recovered_retries"),
            failed_jobs: t.counter("shield.pool.failed_jobs"),
            lane_dispatch: (0..lanes)
                .map(|k| t.counter(&format!("shield.pool.lane{k}.dispatched")))
                .collect(),
        }
    }

    /// Records one batch of `n` jobs under the deterministic
    /// round-robin dispatch model (job `i` goes to lane `i % lanes`).
    fn note_batch(&self, n: usize) {
        self.batches.inc();
        self.jobs.add(n as u64);
        let lanes = self.lane_dispatch.len();
        for (k, counter) in self.lane_dispatch.iter().enumerate() {
            let share = n / lanes + usize::from(k < n % lanes);
            counter.add(share as u64);
        }
    }
}

/// Shared state between the pool handle and its worker lanes.
struct PoolShared {
    /// Jobs submitted but not yet picked up by a lane.
    queued: AtomicUsize,
    /// High-water mark of `queued` (real scheduling; observability only).
    queue_high_water: AtomicUsize,
    /// Jobs executed per lane (real scheduling; observability only).
    jobs_per_lane: Vec<AtomicU64>,
    /// Batches dispatched through [`WorkerPool::run`].
    batches: AtomicU64,
    /// Jobs dispatched through [`WorkerPool::try_run`] since pool
    /// creation — the deterministic submission clock that fault arming
    /// is addressed against.
    submitted: AtomicU64,
    /// Absolute submission index at which the next armed fault fires
    /// (`u64::MAX` = disarmed).
    panic_at: AtomicU64,
    /// Whether the armed fault survives the inline retry (a sticky
    /// "dead lane" rather than a one-shot transient).
    panic_sticky: AtomicBool,
}

impl PoolShared {
    /// Fires an armed injected fault if `submission` is its target.
    /// One-shot faults disarm before panicking so the bounded inline
    /// retry (which replays the same submission index) succeeds;
    /// sticky faults stay armed and kill the retry too.
    fn maybe_injected_panic(&self, submission: u64) {
        if self.panic_at.load(Ordering::Relaxed) == submission {
            if !self.panic_sticky.load(Ordering::Relaxed) {
                self.panic_at.store(u64::MAX, Ordering::Relaxed);
            }
            panic!("injected shield lane fault (job #{submission})");
        }
    }
}

/// Observability counters for a pool. These reflect *real* thread
/// scheduling and are therefore not deterministic; the timing model
/// never reads them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker lanes.
    pub lanes: usize,
    /// Jobs executed by each lane.
    pub jobs_per_lane: Vec<u64>,
    /// Most jobs ever waiting in the shared queue at once.
    pub queue_high_water: usize,
    /// Batches dispatched through [`WorkerPool::run`].
    pub batches: u64,
}

/// Outcome of a draining batch dispatch ([`WorkerPool::try_run`]).
#[derive(Debug)]
pub struct TryRunOutcome<R> {
    /// Per-job results in submission order; `None` where the job
    /// panicked on both its lane attempt and the inline retry.
    pub results: Vec<Option<R>>,
    /// Submission-order indices of jobs with no result, ascending.
    pub failed: Vec<usize>,
    /// Total panics observed across first attempts and retries.
    pub lane_panics: u64,
    /// Panicked jobs that succeeded on the bounded inline retry.
    pub recovered: u64,
}

/// A fixed-size pool of crypto worker lanes.
///
/// One lane models one replicated engine group. A pool with a single
/// lane executes jobs inline on the caller thread (a serial engine set
/// has no fan-out hardware), so `WorkerPool::new(1)` is a zero-overhead
/// stand-in for the serial datapath.
pub struct WorkerPool {
    lanes: usize,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    shared: Arc<PoolShared>,
    tele: OnceLock<PoolTelemetry>,
}

impl core::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool with `lanes` worker lanes (clamped to at least 1).
    /// A one-lane pool spawns no threads and runs jobs inline.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(PoolShared {
            queued: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            jobs_per_lane: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            batches: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            panic_at: AtomicU64::new(u64::MAX),
            panic_sticky: AtomicBool::new(false),
        });
        if lanes == 1 {
            return WorkerPool {
                lanes,
                sender: None,
                workers: Vec::new(),
                shared,
                tele: OnceLock::new(),
            };
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..lanes)
            .map(|lane| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("shef-shield-lane{lane}"))
                    .spawn(move || loop {
                        // Take the next job while holding the queue lock,
                        // then release it before running the job so other
                        // lanes keep draining.
                        // A lane that dies while holding this lock
                        // poisons the mutex; the receiver itself is
                        // still coherent, so surviving lanes recover it
                        // with `into_inner` instead of cascading the
                        // panic across the whole pool.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                shared.queued.fetch_sub(1, Ordering::Relaxed);
                                job();
                                shared.jobs_per_lane[lane].fetch_add(1, Ordering::Relaxed);
                            }
                            // Channel closed: the pool is shutting down.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn shield worker lane")
            })
            .collect();
        WorkerPool {
            lanes,
            sender: Some(tx),
            workers,
            shared,
            tele: OnceLock::new(),
        }
    }

    /// Mirrors the pool's deterministic dispatch counters into
    /// `telemetry`: `shield.pool.{batches,jobs,lane_panics,
    /// recovered_retries,failed_jobs}` plus one
    /// `shield.pool.lane{k}.dispatched` counter per lane under the
    /// round-robin model dispatch. Attach-once: later calls are ignored,
    /// matching the pool's fixed-lanes lifecycle.
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        let _ = self.tele.set(PoolTelemetry::bind(telemetry, self.lanes));
    }

    /// Number of worker lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Snapshot of the observability counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            lanes: self.lanes,
            jobs_per_lane: self
                .shared
                .jobs_per_lane
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queue_high_water: self.shared.queue_high_water.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` over every item, fanning the work across the pool's
    /// lanes, and returns the results **in submission order**.
    ///
    /// Panics in `f` are caught on the worker lane and re-raised on the
    /// caller thread for the earliest-index failing item, so a poisoned
    /// batch cannot deadlock the pool.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        if let Some(tele) = self.tele.get() {
            tele.note_batch(n);
        }
        let Some(sender) = &self.sender else {
            // Single lane: inline execution, trivially deterministic.
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        };
        if n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let f = Arc::new(f);
        let (done_tx, done_rx) = mpsc::channel();
        for (i, item) in items.into_iter().enumerate() {
            let queued = self.shared.queued.fetch_add(1, Ordering::Relaxed) + 1;
            self.shared
                .queue_high_water
                .fetch_max(queued, Ordering::Relaxed);
            let f = Arc::clone(&f);
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)));
                let _ = done_tx.send((i, outcome));
            });
            sender
                .send(job)
                .expect("pool lanes alive while handle held");
        }
        drop(done_tx);
        let mut slots: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = done_rx.recv().expect("every job reports exactly once");
            slots[i] = Some(outcome);
        }
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot.expect("all slots filled") {
                Ok(r) => out.push(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    }

    /// Like [`WorkerPool::run`], but never unwinds into the caller:
    /// every job is drained, each panicked job gets exactly one inline
    /// retry on the caller thread, and jobs that fail the retry too are
    /// reported as empty slots in the outcome instead of re-raising.
    ///
    /// This is the degradation-aware entry point the batch datapath
    /// uses: a dying lane must not abandon sibling jobs (victim seals
    /// in particular exist only in the staged batch).
    ///
    /// Items are cloned up front so panicked jobs can be replayed;
    /// callers on hot paths should make cloning cheap (e.g. `Arc`).
    pub fn try_run<T, R, F>(&self, items: Vec<T>, f: F) -> TryRunOutcome<R>
    where
        T: Clone + Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        if let Some(tele) = self.tele.get() {
            tele.note_batch(n);
        }
        let retry_items = items.clone();
        let f = Arc::new(f);
        let mut outcome = TryRunOutcome {
            results: Vec::with_capacity(n),
            failed: Vec::new(),
            lane_panics: 0,
            recovered: 0,
        };
        // (item index, submission index) of first-attempt panics.
        let mut panicked: Vec<(usize, u64)> = Vec::new();
        if let Some(sender) = self.sender.as_ref().filter(|_| n > 1) {
            let (done_tx, done_rx) = mpsc::channel();
            for (i, item) in items.into_iter().enumerate() {
                let queued = self.shared.queued.fetch_add(1, Ordering::Relaxed) + 1;
                self.shared
                    .queue_high_water
                    .fetch_max(queued, Ordering::Relaxed);
                let s = self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                let f = Arc::clone(&f);
                let shared = Arc::clone(&self.shared);
                let done_tx = done_tx.clone();
                let job: Job = Box::new(move || {
                    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        shared.maybe_injected_panic(s);
                        f(i, item)
                    }));
                    let _ = done_tx.send((i, s, attempt));
                });
                sender
                    .send(job)
                    .expect("pool lanes alive while handle held");
            }
            drop(done_tx);
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (i, s, attempt) = done_rx.recv().expect("every job reports exactly once");
                match attempt {
                    Ok(r) => slots[i] = Some(r),
                    Err(_) => {
                        outcome.lane_panics += 1;
                        panicked.push((i, s));
                    }
                }
            }
            outcome.results = slots;
        } else {
            for (i, item) in items.into_iter().enumerate() {
                let s = self.shared.submitted.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&self.shared);
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    shared.maybe_injected_panic(s);
                    f(i, item)
                }));
                match attempt {
                    Ok(r) => outcome.results.push(Some(r)),
                    Err(_) => {
                        outcome.lane_panics += 1;
                        outcome.results.push(None);
                        panicked.push((i, s));
                    }
                }
            }
        }
        // Bounded retry: replay each panicked job once, inline on the
        // caller thread (deterministic, no lane involved). Replaying
        // the same submission index means a one-shot armed fault has
        // already disarmed itself, while a sticky fault fires again.
        panicked.sort_unstable();
        for (i, s) in panicked {
            let item = retry_items[i].clone();
            let retry = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.shared.maybe_injected_panic(s);
                f(i, item)
            }));
            match retry {
                Ok(r) => {
                    outcome.results[i] = Some(r);
                    outcome.recovered += 1;
                }
                Err(_) => {
                    outcome.lane_panics += 1;
                    outcome.failed.push(i);
                }
            }
        }
        if let Some(tele) = self.tele.get() {
            tele.lane_panics.add(outcome.lane_panics);
            tele.recovered_retries.add(outcome.recovered);
            tele.failed_jobs.add(outcome.failed.len() as u64);
        }
        outcome
    }

    /// Arms a one-shot injected lane fault: the `nth` job (0-based)
    /// dispatched through [`WorkerPool::try_run`] from now on panics on
    /// its first attempt; the bounded inline retry then succeeds. Test
    /// hook for transient-fault campaigns — [`WorkerPool::run`] jobs
    /// are not affected.
    pub fn arm_lane_panic(&self, nth: u64) {
        self.shared.panic_sticky.store(false, Ordering::Relaxed);
        let at = self
            .shared
            .submitted
            .load(Ordering::Relaxed)
            .wrapping_add(nth);
        self.shared.panic_at.store(at, Ordering::Relaxed);
    }

    /// Arms a sticky injected lane fault: like
    /// [`WorkerPool::arm_lane_panic`] but the retry panics too,
    /// modelling a persistently dead lane for that job.
    pub fn arm_lane_panic_sticky(&self, nth: u64) {
        self.shared.panic_sticky.store(true, Ordering::Relaxed);
        let at = self
            .shared
            .submitted
            .load(Ordering::Relaxed)
            .wrapping_add(nth);
        self.shared.panic_at.store(at, Ordering::Relaxed);
    }

    /// Disarms any armed injected lane fault.
    pub fn disarm_lane_panic(&self) {
        self.shared.panic_at.store(u64::MAX, Ordering::Relaxed);
        self.shared.panic_sticky.store(false, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every lane out of `recv`.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.run(items, |i, x| {
            // Stagger lane timing so completion order scrambles.
            if i % 7 == 0 {
                thread::sleep(std::time::Duration::from_micros(50));
            }
            x * 3 + 1
        });
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn single_lane_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = thread::current().id();
        let out = pool.run(vec![(); 8], move |i, ()| {
            assert_eq!(thread::current().id(), tid, "lane 1 must execute inline");
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(pool.stats().jobs_per_lane.iter().all(|&j| j == 0));
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.lanes(), 1);
        assert_eq!(pool.run(vec![5u8], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<u8> = pool.run(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn lanes_share_the_work() {
        let pool = WorkerPool::new(4);
        // Enough jobs that every lane should get some.
        let _ = pool.run((0..4096u64).collect(), |_, x| x.wrapping_mul(2));
        let stats = pool.stats();
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.jobs_per_lane.iter().sum::<u64>(), 4096);
        assert!(stats.batches >= 1);
        assert!(stats.queue_high_water >= 1);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let out = pool.run((0..17u64).collect(), move |_, x| x + round);
            assert_eq!(out, (round..17 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_run_matches_run_on_clean_batches() {
        let pool = WorkerPool::new(4);
        let out = pool.try_run((0..64u64).collect(), |_, x| x * 2);
        assert_eq!(out.failed, Vec::<usize>::new());
        assert_eq!(out.lane_panics, 0);
        assert_eq!(out.recovered, 0);
        let values: Vec<u64> = out.results.into_iter().map(Option::unwrap).collect();
        assert_eq!(values, (0..64u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn one_shot_armed_panic_recovers_on_retry() {
        for lanes in [1usize, 4] {
            let pool = WorkerPool::new(lanes);
            pool.arm_lane_panic(3);
            let out = pool.try_run((0..8u64).collect(), |_, x| x + 1);
            assert_eq!(out.failed, Vec::<usize>::new(), "{lanes} lanes");
            assert_eq!(out.lane_panics, 1, "{lanes} lanes");
            assert_eq!(out.recovered, 1, "{lanes} lanes");
            assert!(out.results.iter().all(Option::is_some));
            // The pool is clean afterwards: no armed fault left behind.
            let again = pool.try_run((0..8u64).collect(), |_, x| x + 1);
            assert_eq!(again.lane_panics, 0, "{lanes} lanes");
        }
    }

    #[test]
    fn sticky_armed_panic_drains_siblings_and_reports_the_slot() {
        for lanes in [1usize, 4] {
            let pool = WorkerPool::new(lanes);
            pool.arm_lane_panic_sticky(2);
            let out = pool.try_run((0..8u64).collect(), |_, x| x + 1);
            assert_eq!(out.failed, vec![2], "{lanes} lanes");
            assert_eq!(out.lane_panics, 2, "attempt + retry, {lanes} lanes");
            assert_eq!(out.recovered, 0, "{lanes} lanes");
            for (i, slot) in out.results.iter().enumerate() {
                if i == 2 {
                    assert!(slot.is_none());
                } else {
                    assert_eq!(*slot, Some(i as u64 + 1), "sibling jobs drained");
                }
            }
            pool.disarm_lane_panic();
            let again = pool.try_run((0..8u64).collect(), |_, x| x + 1);
            assert_eq!(again.lane_panics, 0, "{lanes} lanes");
        }
    }

    #[test]
    fn real_panic_in_try_run_never_unwinds_into_caller() {
        let pool = WorkerPool::new(2);
        let out = pool.try_run((0..8u64).collect(), |_, x| {
            assert!(x != 5, "boom");
            x
        });
        // A genuine (non-injected) panic repeats on retry: same input,
        // same deterministic crash.
        assert_eq!(out.failed, vec![5]);
        assert_eq!(out.lane_panics, 2);
        assert_eq!(out.results[5], None);
        assert_eq!(out.results[4], Some(4));
        // The pool (and its queue mutex) survive for the next batch.
        assert_eq!(pool.run(vec![1u64, 2], |_, x| x * 10), vec![10, 20]);
    }

    #[test]
    fn telemetry_counts_model_dispatch_deterministically() {
        let t = Telemetry::new();
        let pool = WorkerPool::new(4);
        pool.attach_telemetry(&t);
        let _ = pool.try_run((0..10u64).collect(), |_, x| x);
        pool.arm_lane_panic_sticky(2);
        let _ = pool.try_run((0..3u64).collect(), |_, x| x);
        let r = t.report();
        assert_eq!(r.counters["shield.pool.batches"], 2);
        assert_eq!(r.counters["shield.pool.jobs"], 13);
        // Round-robin model dispatch: 10 jobs then 3 jobs over 4 lanes.
        assert_eq!(r.counters["shield.pool.lane0.dispatched"], 3 + 1);
        assert_eq!(r.counters["shield.pool.lane1.dispatched"], 3 + 1);
        assert_eq!(r.counters["shield.pool.lane2.dispatched"], 2 + 1);
        assert_eq!(r.counters["shield.pool.lane3.dispatched"], 2);
        assert_eq!(r.counters["shield.pool.lane_panics"], 2);
        assert_eq!(r.counters["shield.pool.recovered_retries"], 0);
        assert_eq!(r.counters["shield.pool.failed_jobs"], 1);
    }

    #[test]
    fn panic_in_job_propagates_without_deadlock() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run((0..8u64).collect(), |_, x| {
                assert!(x != 5, "boom");
                x
            })
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.run(vec![1u64, 2], |_, x| x * 10), vec![10, 20]);
    }
}
