//! Hand-rolled worker pool backing the parallel chunk-crypto datapath.
//!
//! The paper's Shield gets its throughput from *replicated* engine sets
//! (§5.2.2, §6): several AES/MAC engine groups seal and open memory
//! chunks concurrently. This module is the execution substrate for that
//! replication in the simulator: a fixed set of worker lanes
//! (`std::thread` + `mpsc` channels — the workspace builds offline, so
//! no rayon/crossbeam) that chunk-crypto batches are fanned across.
//!
//! Determinism contract: [`WorkerPool::run`] returns results in the
//! exact order of the submitted jobs regardless of which lane executed
//! what or in which order lanes finished. All *modelled* cost accounting
//! (see [`super::timing::parallel_batch_cost`]) is computed from a
//! deterministic round-robin lane assignment, never from real-thread
//! scheduling, so cycle ledgers and engine-set statistics are
//! bit-reproducible run to run. Only the observability counters in
//! [`PoolStats`] reflect real scheduling.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared state between the pool handle and its worker lanes.
struct PoolShared {
    /// Jobs submitted but not yet picked up by a lane.
    queued: AtomicUsize,
    /// High-water mark of `queued` (real scheduling; observability only).
    queue_high_water: AtomicUsize,
    /// Jobs executed per lane (real scheduling; observability only).
    jobs_per_lane: Vec<AtomicU64>,
    /// Batches dispatched through [`WorkerPool::run`].
    batches: AtomicU64,
}

/// Observability counters for a pool. These reflect *real* thread
/// scheduling and are therefore not deterministic; the timing model
/// never reads them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker lanes.
    pub lanes: usize,
    /// Jobs executed by each lane.
    pub jobs_per_lane: Vec<u64>,
    /// Most jobs ever waiting in the shared queue at once.
    pub queue_high_water: usize,
    /// Batches dispatched through [`WorkerPool::run`].
    pub batches: u64,
}

/// A fixed-size pool of crypto worker lanes.
///
/// One lane models one replicated engine group. A pool with a single
/// lane executes jobs inline on the caller thread (a serial engine set
/// has no fan-out hardware), so `WorkerPool::new(1)` is a zero-overhead
/// stand-in for the serial datapath.
pub struct WorkerPool {
    lanes: usize,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    shared: Arc<PoolShared>,
}

impl core::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("lanes", &self.lanes)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns a pool with `lanes` worker lanes (clamped to at least 1).
    /// A one-lane pool spawns no threads and runs jobs inline.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        let lanes = lanes.max(1);
        let shared = Arc::new(PoolShared {
            queued: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            jobs_per_lane: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            batches: AtomicU64::new(0),
        });
        if lanes == 1 {
            return WorkerPool {
                lanes,
                sender: None,
                workers: Vec::new(),
                shared,
            };
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..lanes)
            .map(|lane| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("shef-shield-lane{lane}"))
                    .spawn(move || loop {
                        // Take the next job while holding the queue lock,
                        // then release it before running the job so other
                        // lanes keep draining.
                        let job = {
                            let guard = rx.lock().expect("pool queue lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                shared.queued.fetch_sub(1, Ordering::Relaxed);
                                job();
                                shared.jobs_per_lane[lane].fetch_add(1, Ordering::Relaxed);
                            }
                            // Channel closed: the pool is shutting down.
                            Err(_) => break,
                        }
                    })
                    .expect("spawn shield worker lane")
            })
            .collect();
        WorkerPool {
            lanes,
            sender: Some(tx),
            workers,
            shared,
        }
    }

    /// Number of worker lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Snapshot of the observability counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            lanes: self.lanes,
            jobs_per_lane: self
                .shared
                .jobs_per_lane
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queue_high_water: self.shared.queue_high_water.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` over every item, fanning the work across the pool's
    /// lanes, and returns the results **in submission order**.
    ///
    /// Panics in `f` are caught on the worker lane and re-raised on the
    /// caller thread for the earliest-index failing item, so a poisoned
    /// batch cannot deadlock the pool.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let n = items.len();
        let Some(sender) = &self.sender else {
            // Single lane: inline execution, trivially deterministic.
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        };
        if n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let f = Arc::new(f);
        let (done_tx, done_rx) = mpsc::channel();
        for (i, item) in items.into_iter().enumerate() {
            let queued = self.shared.queued.fetch_add(1, Ordering::Relaxed) + 1;
            self.shared
                .queue_high_water
                .fetch_max(queued, Ordering::Relaxed);
            let f = Arc::clone(&f);
            let done_tx = done_tx.clone();
            let job: Job = Box::new(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)));
                let _ = done_tx.send((i, outcome));
            });
            sender
                .send(job)
                .expect("pool lanes alive while handle held");
        }
        drop(done_tx);
        let mut slots: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = done_rx.recv().expect("every job reports exactly once");
            slots[i] = Some(outcome);
        }
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot.expect("all slots filled") {
                Ok(r) => out.push(r),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every lane out of `recv`.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.run(items, |i, x| {
            // Stagger lane timing so completion order scrambles.
            if i % 7 == 0 {
                thread::sleep(std::time::Duration::from_micros(50));
            }
            x * 3 + 1
        });
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn single_lane_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = thread::current().id();
        let out = pool.run(vec![(); 8], move |i, ()| {
            assert_eq!(thread::current().id(), tid, "lane 1 must execute inline");
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(pool.stats().jobs_per_lane.iter().all(|&j| j == 0));
    }

    #[test]
    fn zero_lanes_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.lanes(), 1);
        assert_eq!(pool.run(vec![5u8], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<u8> = pool.run(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn lanes_share_the_work() {
        let pool = WorkerPool::new(4);
        // Enough jobs that every lane should get some.
        let _ = pool.run((0..4096u64).collect(), |_, x| x.wrapping_mul(2));
        let stats = pool.stats();
        assert_eq!(stats.lanes, 4);
        assert_eq!(stats.jobs_per_lane.iter().sum::<u64>(), 4096);
        assert!(stats.batches >= 1);
        assert!(stats.queue_high_water >= 1);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = WorkerPool::new(3);
        for round in 0..50u64 {
            let out = pool.run((0..17u64).collect(), move |_, x| x + round);
            assert_eq!(out, (round..17 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panic_in_job_propagates_without_deadlock() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run((0..8u64).collect(), |_, x| {
                assert!(x != 5, "boom");
                x
            })
        }));
        assert!(result.is_err());
        // The pool is still usable afterwards.
        assert_eq!(pool.run(vec![1u64, 2], |_, x| x * 10), vec![10, 20]);
    }
}
