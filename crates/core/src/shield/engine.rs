//! Engine-set runtime: the per-region datapath of the Shield.
//!
//! One [`EngineSet`] guards one memory region (§5.2.2): it holds the
//! region's AES/MAC engines, an optional on-chip buffer ("a cache with a
//! line size of `C_mem`"), and optional freshness counters. All DRAM
//! traffic flows through the (untrusted, interposable) Shell.

use std::collections::{HashMap, HashSet, VecDeque};

use shef_telemetry::{Counter, Gauge, Histogram, Telemetry};

use shef_crypto::authenc::AuthEncKey;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

use super::chunk::{open_chunk, seal_chunk, CHUNK_TAG_LEN};
use super::config::RegionConfig;
use super::keys::DataEncryptionKey;
use super::merkle::{MerkleStats, MerkleTree};
use super::pool::WorkerPool;
use super::timing::{
    buffer_hit_cost, chunk_crypto_cost, parallel_batch_cost, ACCEL_PORT_READ_LANE,
    ACCEL_PORT_WRITE_LANE, PORT_READ_LANE, PORT_WRITE_LANE, SHELL_PORT_BYTES_PER_CYCLE,
};
use crate::ShefError;
use shef_fpga::clock::Cycles;

/// How an accelerator consumes an access, for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// Pipelined streaming: the accelerator overlaps crypto with
    /// compute; cost is engine-set occupancy.
    #[default]
    Streaming,
    /// Blocking: the accelerator stalls until the chunk is verified
    /// (DNNWeaver's weight reads, §6.2.4); cost is serial latency.
    Blocking,
}

/// Counters exposed for tests and the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSetStats {
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses (chunk fills from DRAM).
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Integrity failures detected.
    pub integrity_failures: u64,
    /// Plaintext bytes served to the accelerator.
    pub bytes_read: u64,
    /// Plaintext bytes accepted from the accelerator.
    pub bytes_written: u64,
    /// Zero-filled write allocations (streaming-write optimization).
    pub zero_fills: u64,
    /// Batch operations dispatched through the parallel datapath.
    pub parallel_batches: u64,
    /// Chunk seal/open jobs issued by batch operations.
    pub parallel_jobs: u64,
    /// Lanes used by the most recent batch operation.
    pub lanes: u64,
    /// Most crypto jobs in flight within a single batch (queue-depth
    /// high-water mark of the lane dispatcher).
    pub queue_depth_hwm: u64,
    /// Modelled crypto cycles summed over every batch job — what the
    /// same work would occupy on one serial engine set.
    pub lane_cycles_total: u64,
    /// Modelled crypto cycles of the busiest lane, accumulated batch by
    /// batch — the parallel makespan actually charged to the ledger.
    pub lane_cycles_max: u64,
    /// Worker-lane panics observed by the batch datapath, including
    /// panics repeated on the bounded inline retry.
    pub lane_panics: u64,
    /// Panicked crypto jobs that succeeded on the bounded inline retry
    /// (transient faults absorbed without surfacing an error).
    pub recovered_retries: u64,
    /// Victim seals recomputed inline after a job failed its retry —
    /// the guaranteed-drain path that keeps evicted chunks from being
    /// lost to a dead lane.
    pub drained_seals: u64,
    /// Operations rejected because the engine set was poisoned by a
    /// previously detected integrity violation.
    pub contained_rejects: u64,
}

impl EngineSetStats {
    /// Modelled speedup of the parallel datapath over a serial engine
    /// set: serial-equivalent work divided by the accumulated makespan.
    /// Clamped to 1.0 when no batch work has been dispatched (or the
    /// ratio is otherwise undefined) so callers can feed it straight
    /// into reports without NaN/inf guards.
    #[must_use]
    pub fn parallel_speedup(&self) -> f64 {
        if self.lane_cycles_max == 0 {
            return 1.0;
        }
        let speedup = self.lane_cycles_total as f64 / self.lane_cycles_max as f64;
        if speedup.is_finite() {
            speedup
        } else {
            1.0
        }
    }

    /// Fraction of the lanes' aggregate capacity the batch work kept
    /// busy (1.0 = perfectly balanced across lanes). Clamped to 1.0
    /// when no batch work has been dispatched. The denominator is
    /// computed in f64: `lane_cycles_max * lanes` as u64 could overflow
    /// on long campaigns (panic in debug builds, a wrapped — and thus
    /// wildly wrong — utilization in release).
    #[must_use]
    pub fn lane_utilization(&self) -> f64 {
        if self.lane_cycles_max == 0 || self.lanes == 0 {
            return 1.0;
        }
        let util =
            self.lane_cycles_total as f64 / (self.lane_cycles_max as f64 * self.lanes as f64);
        if util.is_finite() {
            util
        } else {
            1.0
        }
    }
}

/// Pre-resolved telemetry handles for one engine set.
///
/// Bound to a private detached registry at construction, so the hot
/// path never branches on "is telemetry attached"; [`EngineSet::attach_telemetry`]
/// rebinds the handles onto a shared registry. Counter names aggregate
/// across regions (every set increments the same `shield.engine.*`
/// instruments), and every value mirrored here is model-derived, so
/// reports stay byte-identical run to run.
#[derive(Debug, Clone)]
struct EngineTelemetry {
    registry: Telemetry,
    hits: Counter,
    misses: Counter,
    writebacks: Counter,
    evictions: Counter,
    integrity_failures: Counter,
    zero_fills: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    contained_rejects: Counter,
    lane_panics: Counter,
    recovered_retries: Counter,
    drained_seals: Counter,
    parallel_batches: Counter,
    parallel_jobs: Counter,
    lanes: Gauge,
    queue_depth_hwm: Gauge,
    batch_jobs: Histogram,
}

impl EngineTelemetry {
    /// Job-count buckets for the per-batch histogram: small batches
    /// dominate register-file traffic, 256 chunks is already a full
    /// working-set sweep.
    const BATCH_JOB_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 256];

    fn bind(t: &Telemetry) -> Self {
        EngineTelemetry {
            registry: t.clone(),
            hits: t.counter("shield.engine.hits"),
            misses: t.counter("shield.engine.misses"),
            writebacks: t.counter("shield.engine.writebacks"),
            evictions: t.counter("shield.engine.evictions"),
            integrity_failures: t.counter("shield.engine.integrity_failures"),
            zero_fills: t.counter("shield.engine.zero_fills"),
            bytes_read: t.counter("shield.engine.bytes_read"),
            bytes_written: t.counter("shield.engine.bytes_written"),
            contained_rejects: t.counter("shield.engine.contained_rejects"),
            lane_panics: t.counter("shield.engine.lane_panics"),
            recovered_retries: t.counter("shield.engine.recovered_retries"),
            drained_seals: t.counter("shield.engine.drained_seals"),
            parallel_batches: t.counter("shield.engine.parallel_batches"),
            parallel_jobs: t.counter("shield.engine.parallel_jobs"),
            lanes: t.gauge("shield.engine.lanes"),
            queue_depth_hwm: t.gauge("shield.engine.queue_depth_hwm"),
            batch_jobs: t.histogram("shield.engine.batch_jobs", &Self::BATCH_JOB_BOUNDS),
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    data: Vec<u8>,
    dirty: bool,
}

/// The runtime state of one engine set.
pub struct EngineSet {
    region: RegionConfig,
    tag_base: u64,
    key: AuthEncKey,
    nonce: [u8; 8],
    lane: String,
    lines: HashMap<u32, Line>,
    lru: VecDeque<u32>,
    capacity_lines: usize,
    counters: HashMap<u32, u64>,
    merkle: Option<MerkleTree>,
    stats: EngineSetStats,
    tele: EngineTelemetry,
    /// Fail-stop containment: set on the first detected integrity
    /// violation; every access is rejected until explicitly cleared.
    poisoned: bool,
}

impl core::fmt::Debug for EngineSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EngineSet")
            .field("region", &self.region.name)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl EngineSet {
    /// Builds the engine set for `region`, deriving its working keys from
    /// the provisioned Data Encryption Key. `merkle_base` is the DRAM
    /// address of the region's tree arena, used only when the engine set
    /// selects the Bonsai-Merkle-Tree replay defence.
    #[must_use]
    pub fn new(
        region: RegionConfig,
        region_index: usize,
        tag_base: u64,
        merkle_base: u64,
        dek: &DataEncryptionKey,
    ) -> Self {
        let key = dek.region_key(&region);
        let nonce = dek.region_nonce(&region);
        let chunk = region.engine_set.chunk_size;
        let capacity_lines = if region.engine_set.buffer_bytes == 0 {
            // No buffer: a single in-flight chunk register.
            1
        } else {
            (region.engine_set.buffer_bytes / chunk).max(1)
        };
        let lane = format!("shield.{}[{}]", region.name, region_index);
        let merkle = region.engine_set.merkle.map(|cfg| {
            let chunks = region.range.len.div_ceil(chunk as u64);
            MerkleTree::new(
                cfg,
                dek.region_tree_key(&region),
                merkle_base,
                chunks,
                &lane,
            )
        });
        EngineSet {
            lane,
            region,
            tag_base,
            key,
            nonce,
            lines: HashMap::new(),
            lru: VecDeque::new(),
            capacity_lines,
            counters: HashMap::new(),
            merkle,
            stats: EngineSetStats::default(),
            tele: EngineTelemetry::bind(&Telemetry::new()),
            poisoned: false,
        }
    }

    /// Rebinds this set's `shield.engine.*` instruments onto a shared
    /// registry; until called, the set reports into a private detached
    /// registry. Counters mirrored after this point aggregate with
    /// every other set attached to `telemetry`.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tele = EngineTelemetry::bind(telemetry);
    }

    /// The protected region.
    #[must_use]
    pub fn region(&self) -> &RegionConfig {
        &self.region
    }

    /// Runtime counters.
    #[must_use]
    pub fn stats(&self) -> EngineSetStats {
        self.stats
    }

    /// The cost-ledger lane this set charges.
    #[must_use]
    pub fn lane(&self) -> &str {
        &self.lane
    }

    /// Merkle-tree statistics, when the region uses the Bonsai-Merkle-
    /// Tree replay defence.
    #[must_use]
    pub fn merkle_stats(&self) -> Option<MerkleStats> {
        self.merkle.as_ref().map(MerkleTree::stats)
    }

    /// Drops the tree's verified-node cache (models a power event; test
    /// hook for replay-detection scenarios).
    pub fn clear_merkle_cache(&mut self) {
        if let Some(tree) = &mut self.merkle {
            tree.clear_cache();
        }
    }

    /// Whether the engine set is poisoned: a detected integrity
    /// violation has fail-stopped the datapath.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Plaintext bytes currently resident in the on-chip buffer. The
    /// multi-tenant service reports this as shard occupancy, and the
    /// isolation suite uses it to assert one tenant's working set never
    /// migrates into another tenant's engine sets.
    #[must_use]
    pub fn buffered_bytes(&self) -> u64 {
        self.lines.values().map(|l| l.data.len() as u64).sum()
    }

    /// Clears containment state after a detected integrity violation
    /// and re-opens the datapath. Every buffered line is dropped — its
    /// provenance is suspect once the DRAM image has been tampered with
    /// — but freshness state (counters / tree) is retained, so
    /// untampered DRAM contents still verify on refill.
    pub fn clear_poison(&mut self) {
        self.poisoned = false;
        self.lines.clear();
        self.lru.clear();
    }

    /// Records a detected integrity violation and poisons the set:
    /// detection without containment would let tampered and clean
    /// traffic interleave.
    fn note_integrity_failure(&mut self) {
        self.stats.integrity_failures += 1;
        self.tele.integrity_failures.inc();
        self.poisoned = true;
    }

    /// Entry gate for every datapath operation: a poisoned set rejects
    /// all traffic until [`EngineSet::clear_poison`].
    fn check_operational(&mut self) -> Result<(), ShefError> {
        if self.poisoned {
            self.stats.contained_rejects += 1;
            self.tele.contained_rejects.inc();
            return Err(ShefError::Fault(crate::fault::ShieldFault::Poisoned {
                region: self.region.name.clone(),
            }));
        }
        Ok(())
    }

    fn chunk_size(&self) -> usize {
        self.region.engine_set.chunk_size
    }

    fn chunk_index(&self, addr: u64) -> u32 {
        ((addr - self.region.range.start) / self.chunk_size() as u64) as u32
    }

    fn chunk_addr(&self, idx: u32) -> u64 {
        self.region.range.start + idx as u64 * self.chunk_size() as u64
    }

    fn chunk_len(&self, idx: u32) -> usize {
        let start = self.chunk_addr(idx);
        (self.region.range.end() - start).min(self.chunk_size() as u64) as usize
    }

    fn tag_addr(&self, idx: u32) -> u64 {
        self.tag_base + idx as u64 * CHUNK_TAG_LEN as u64
    }

    /// Current write epoch of chunk `idx`. On-chip counters answer from
    /// the register file for free; the Merkle baseline walks an
    /// authenticated path of DRAM-resident tree nodes.
    fn current_epoch(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<u64, ShefError> {
        if self.region.engine_set.counters {
            return Ok(self.counters.get(&idx).copied().unwrap_or(0));
        }
        let Some(tree) = &mut self.merkle else {
            return Ok(0);
        };
        match tree.counter(shell, dram, ledger, idx, mode) {
            Ok(epoch) => Ok(epoch),
            Err(e) => {
                if matches!(e, ShefError::IntegrityViolation(_)) {
                    self.note_integrity_failure();
                }
                Err(e)
            }
        }
    }

    /// Advances the write epoch of chunk `idx`, returning the new value.
    fn advance_epoch(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<u64, ShefError> {
        if self.region.engine_set.counters {
            let e = self.counters.entry(idx).or_insert(0);
            *e += 1;
            return Ok(*e);
        }
        let Some(tree) = &mut self.merkle else {
            return Ok(0);
        };
        match tree.bump(shell, dram, ledger, idx, mode) {
            Ok(epoch) => Ok(epoch),
            Err(e) => {
                if matches!(e, ShefError::IntegrityViolation(_)) {
                    self.note_integrity_failure();
                }
                Err(e)
            }
        }
    }

    fn charge_crypto(&self, ledger: &mut CostLedger, len: usize, mode: AccessMode) {
        let cost = chunk_crypto_cost(&self.region.engine_set, len);
        match mode {
            AccessMode::Streaming => ledger.add_busy(&self.lane, cost.lane),
            AccessMode::Blocking => ledger.add_serial(cost.latency),
        }
    }

    fn touch_lru(&mut self, idx: u32) {
        if let Some(pos) = self.lru.iter().position(|&i| i == idx) {
            self.lru.remove(pos);
        }
        self.lru.push_back(idx);
    }

    fn make_room(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        while self.lines.len() >= self.capacity_lines {
            let victim = self
                .lru
                .pop_front()
                .expect("lines non-empty implies lru non-empty");
            self.tele.evictions.inc();
            self.writeback_line(shell, dram, ledger, victim, mode)?;
            self.lines.remove(&victim);
        }
        Ok(())
    }

    fn writeback_line(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        let line = match self.lines.get(&idx) {
            Some(l) if l.dirty => l.data.clone(),
            _ => return Ok(()),
        };
        // Bump the epoch: every rewrite uses a fresh IV and tag.
        let new_epoch = self.advance_epoch(shell, dram, ledger, idx, mode)?;
        let (ciphertext, tag) = seal_chunk(
            &self.key,
            self.nonce,
            &self.region.name,
            idx,
            new_epoch,
            &line,
        );
        self.charge_crypto(ledger, line.len(), mode);
        ledger.add_busy(
            PORT_WRITE_LANE,
            Cycles(((ciphertext.len() + tag.len()) as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        shell.mem_write(dram, self.chunk_addr(idx), &ciphertext)?;
        shell.mem_write(dram, self.tag_addr(idx), &tag)?;
        self.stats.writebacks += 1;
        self.tele.writebacks.inc();
        if let Some(l) = self.lines.get_mut(&idx) {
            l.dirty = false;
        }
        Ok(())
    }

    /// Ensures chunk `idx` is resident; `zero_fill` skips the DRAM read
    /// for full-overwrite writes.
    fn ensure_line(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
        zero_fill: bool,
    ) -> Result<(), ShefError> {
        if self.lines.contains_key(&idx) {
            self.stats.hits += 1;
            self.tele.hits.inc();
            self.touch_lru(idx);
            return Ok(());
        }
        self.make_room(shell, dram, ledger, mode)?;
        let len = self.chunk_len(idx);
        let line = if zero_fill {
            self.stats.zero_fills += 1;
            self.tele.zero_fills.inc();
            Line {
                data: vec![0u8; len],
                dirty: false,
            }
        } else {
            self.stats.misses += 1;
            self.tele.misses.inc();
            ledger.add_busy(
                PORT_READ_LANE,
                Cycles(((len + CHUNK_TAG_LEN) as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
            );
            let ciphertext = shell.mem_read(dram, self.chunk_addr(idx), len)?;
            let tag_bytes = shell.mem_read(dram, self.tag_addr(idx), CHUNK_TAG_LEN)?;
            let tag: [u8; CHUNK_TAG_LEN] = tag_bytes
                .try_into()
                .expect("tag read returns requested length");
            let epoch = self.current_epoch(shell, dram, ledger, idx, mode)?;
            self.charge_crypto(ledger, len, mode);
            let plaintext = open_chunk(
                &self.key,
                self.nonce,
                &self.region.name,
                idx,
                epoch,
                &ciphertext,
                &tag,
            )
            .inspect_err(|_| {
                self.note_integrity_failure();
            })?;
            Line {
                data: plaintext,
                dirty: false,
            }
        };
        self.lines.insert(idx, line);
        self.touch_lru(idx);
        Ok(())
    }

    /// Reads `len` plaintext bytes at `addr` (must lie in the region).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] if any covered chunk
    /// fails authentication.
    pub fn read(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
        mode: AccessMode,
    ) -> Result<Vec<u8>, ShefError> {
        debug_assert!(self.region.range.contains_span(addr, len));
        self.check_operational()?;
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let idx = self.chunk_index(cur);
            let chunk_start = self.chunk_addr(idx);
            let offset = (cur - chunk_start) as usize;
            let take = ((end - cur) as usize).min(self.chunk_len(idx) - offset);
            self.ensure_line(shell, dram, ledger, idx, mode, false)?;
            let line = &self.lines[&idx];
            out.extend_from_slice(&line.data[offset..offset + take]);
            ledger.add_busy(ACCEL_PORT_READ_LANE, buffer_hit_cost(take));
            cur += take as u64;
        }
        self.stats.bytes_read += len as u64;
        self.tele.bytes_read.add(len as u64);
        Ok(out)
    }

    /// Writes plaintext bytes at `addr` (must lie in the region).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] if a read-modify-write
    /// fill fails authentication.
    pub fn write(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        debug_assert!(self.region.range.contains_span(addr, data.len()));
        self.check_operational()?;
        let mut cur = addr;
        let end = addr + data.len() as u64;
        let mut src = 0usize;
        while cur < end {
            let idx = self.chunk_index(cur);
            let chunk_start = self.chunk_addr(idx);
            let offset = (cur - chunk_start) as usize;
            let take = ((end - cur) as usize).min(self.chunk_len(idx) - offset);
            let full_overwrite = offset == 0 && take == self.chunk_len(idx);
            let zero_fill = !self.lines.contains_key(&idx)
                && (full_overwrite || self.region.engine_set.zero_fill_writes);
            self.ensure_line(shell, dram, ledger, idx, mode, zero_fill)?;
            let line = self.lines.get_mut(&idx).expect("just ensured");
            line.data[offset..offset + take].copy_from_slice(&data[src..src + take]);
            line.dirty = true;
            ledger.add_busy(ACCEL_PORT_WRITE_LANE, buffer_hit_cost(take));
            cur += take as u64;
            src += take;
        }
        self.stats.bytes_written += data.len() as u64;
        self.tele.bytes_written.add(data.len() as u64);
        Ok(())
    }

    /// Writes back all dirty lines and clears the buffer.
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors from write-back traffic.
    pub fn flush(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
    ) -> Result<(), ShefError> {
        self.check_operational()?;
        let indices: Vec<u32> = self.lru.iter().copied().collect();
        for idx in indices {
            self.writeback_line(shell, dram, ledger, idx, AccessMode::Streaming)?;
        }
        self.lines.clear();
        self.lru.clear();
        Ok(())
    }

    // -----------------------------------------------------------------
    // Parallel batch datapath (replicated engine sets, §5.2.2/§6).
    //
    // A batch operation walks its span exactly like the serial path —
    // same hit/miss decisions, same LRU order, same epoch sequence —
    // but instead of running each chunk's AES/MAC inline it *stages*
    // the crypto and fans the whole batch across a [`WorkerPool`].
    // Results merge in dispatch order, so the parallel path is
    // bit-identical to the serial one on every success path.
    //
    // Two ordering hazards force a staged job to run inline ("materialize"):
    //  * Hazard A — a fill reads a chunk whose evicted predecessor's
    //    seal has not landed in DRAM yet: the seal runs inline first.
    //  * Hazard B — eviction hits a dirty read-modify-write placeholder
    //    whose fill is still in flight: the open runs inline first.
    //
    // On error the batch is drained, not abandoned: victim write-backs
    // always land (their plaintext exists only in the staged job),
    // fills verified before the failure point install as usual, and the
    // earliest failing chunk in dispatch order is reported. Cycle
    // charges cover all staged work — speculation is not free.
    // -----------------------------------------------------------------

    /// Stages a fill: reads ciphertext+tag, resolves the epoch, enqueues
    /// the open, and parks a placeholder line so LRU bookkeeping matches
    /// the serial walk. `dirty` pre-marks read-modify-write fills.
    #[allow(clippy::too_many_arguments)]
    fn batch_stage_fill(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        plan: &mut BatchPlan,
        idx: u32,
        mode: AccessMode,
        dirty: bool,
    ) -> Result<(), ShefError> {
        self.stats.misses += 1;
        self.tele.misses.inc();
        let len = self.chunk_len(idx);
        // Hazard A: this chunk was evicted earlier in the batch and its
        // seal has not landed — land it now so the fill reads fresh bytes.
        self.batch_materialize_seal(shell, dram, ledger, plan, idx)?;
        ledger.add_busy(
            PORT_READ_LANE,
            Cycles(((len + CHUNK_TAG_LEN) as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        let ciphertext = shell.mem_read(dram, self.chunk_addr(idx), len)?;
        let tag_bytes = shell.mem_read(dram, self.tag_addr(idx), CHUNK_TAG_LEN)?;
        let tag: [u8; CHUNK_TAG_LEN] = tag_bytes
            .try_into()
            .expect("tag read returns requested length");
        let epoch = self.current_epoch(shell, dram, ledger, idx, mode)?;
        plan.pending_open.insert(idx, plan.jobs.len());
        plan.lens.push(len);
        plan.jobs.push(Some(BatchJob::Open {
            idx,
            epoch,
            ciphertext,
            tag,
        }));
        plan.install.insert(idx);
        self.lines.insert(
            idx,
            Line {
                data: Vec::new(),
                dirty,
            },
        );
        self.touch_lru(idx);
        Ok(())
    }

    /// Batch-mode `make_room`: evicts like the serial path but defers
    /// victim seals onto the plan.
    fn batch_evict(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        mode: AccessMode,
        plan: &mut BatchPlan,
    ) -> Result<(), ShefError> {
        while self.lines.len() >= self.capacity_lines {
            let victim = self
                .lru
                .pop_front()
                .expect("lines non-empty implies lru non-empty");
            self.tele.evictions.inc();
            if plan.pending_open.contains_key(&victim) {
                if self.lines.get(&victim).is_some_and(|l| l.dirty) {
                    // Hazard B: the line carries pending write bytes but
                    // its fill is still in flight.
                    self.batch_materialize_open(plan, victim)?;
                } else {
                    // Clean in-flight read fill: nothing to write back.
                    // Cancel the install; the staged open still feeds the
                    // caller's output buffer.
                    plan.pending_open.remove(&victim);
                    plan.install.remove(&victim);
                    self.lines.remove(&victim);
                    continue;
                }
            }
            if self.lines.get(&victim).is_some_and(|l| l.dirty) {
                let data = self.lines[&victim].data.clone();
                let epoch = self.advance_epoch(shell, dram, ledger, victim, mode)?;
                plan.stage_seal(victim, epoch, data);
            }
            self.lines.remove(&victim);
        }
        Ok(())
    }

    /// Runs a staged victim seal inline and lands it in DRAM (Hazard A).
    /// No-op if `idx` has no pending seal. Its crypto cycles stay in the
    /// batch cost model via the length recorded at staging time.
    fn batch_materialize_seal(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        plan: &mut BatchPlan,
        idx: u32,
    ) -> Result<(), ShefError> {
        let Some(pos) = plan.pending_seal.remove(&idx) else {
            return Ok(());
        };
        let Some(BatchJob::Seal { idx, epoch, data }) = plan.jobs[pos].take() else {
            unreachable!("pending_seal points at a staged seal job");
        };
        let (ciphertext, tag) =
            seal_chunk(&self.key, self.nonce, &self.region.name, idx, epoch, &data);
        ledger.add_busy(
            PORT_WRITE_LANE,
            Cycles(((ciphertext.len() + tag.len()) as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        shell.mem_write(dram, self.chunk_addr(idx), &ciphertext)?;
        shell.mem_write(dram, self.tag_addr(idx), &tag)?;
        self.stats.writebacks += 1;
        self.tele.writebacks.inc();
        Ok(())
    }

    /// Runs a staged fill open inline and installs the plaintext plus any
    /// pending write bytes (Hazard B).
    fn batch_materialize_open(&mut self, plan: &mut BatchPlan, idx: u32) -> Result<(), ShefError> {
        let Some(pos) = plan.pending_open.remove(&idx) else {
            return Ok(());
        };
        let Some(BatchJob::Open {
            idx,
            epoch,
            ciphertext,
            tag,
        }) = plan.jobs[pos].take()
        else {
            unreachable!("pending_open points at a staged open job");
        };
        plan.install.remove(&idx);
        let plaintext = match open_chunk(
            &self.key,
            self.nonce,
            &self.region.name,
            idx,
            epoch,
            &ciphertext,
            &tag,
        ) {
            Ok(pt) => pt,
            Err(e) => {
                self.note_integrity_failure();
                self.lines.remove(&idx);
                if let Some(p) = self.lru.iter().position(|&i| i == idx) {
                    self.lru.remove(p);
                }
                return Err(e);
            }
        };
        if let Some(line) = self.lines.get_mut(&idx) {
            line.data = plaintext;
            if let Some((off, bytes)) = plan.apply.remove(&idx) {
                line.data[off..off + bytes.len()].copy_from_slice(&bytes);
            }
        }
        Ok(())
    }

    /// Fans the staged jobs across the pool's lanes with draining
    /// degradation semantics: a panicked job gets one inline retry, and
    /// a job that dies anyway is absorbed — seals are recomputed on the
    /// controller's own engines (the evicted plaintext exists only in
    /// the staged job, so it must never be lost), while opens report a
    /// contained [`crate::fault::ShieldFault::LanePanic`] in dispatch
    /// order. Jobs travel as `Arc`s so the retry copies are refcount
    /// bumps, not chunk memcpys.
    fn run_crypto_jobs(&mut self, pool: &WorkerPool, jobs: Vec<BatchJob>) -> Vec<BatchJobResult> {
        let key = self.key.clone();
        let nonce = self.nonce;
        let name = self.region.name.clone();
        let jobs: Vec<std::sync::Arc<BatchJob>> =
            jobs.into_iter().map(std::sync::Arc::new).collect();
        let fallback = jobs.clone();
        let outcome = pool.try_run(jobs, move |_, job| match &*job {
            BatchJob::Seal { idx, epoch, data } => {
                let (ciphertext, tag) = seal_chunk(&key, nonce, &name, *idx, *epoch, data);
                BatchJobResult::Sealed {
                    idx: *idx,
                    ciphertext,
                    tag,
                }
            }
            BatchJob::Open {
                idx,
                epoch,
                ciphertext,
                tag,
            } => BatchJobResult::Opened {
                idx: *idx,
                plaintext: open_chunk(&key, nonce, &name, *idx, *epoch, ciphertext, tag),
            },
        });
        self.stats.lane_panics += outcome.lane_panics;
        self.stats.recovered_retries += outcome.recovered;
        self.tele.lane_panics.add(outcome.lane_panics);
        self.tele.recovered_retries.add(outcome.recovered);
        let mut results = Vec::with_capacity(outcome.results.len());
        for (i, slot) in outcome.results.into_iter().enumerate() {
            match slot {
                Some(r) => results.push(r),
                None => match &*fallback[i] {
                    BatchJob::Seal { idx, epoch, data } => {
                        let (ciphertext, tag) = seal_chunk(
                            &self.key,
                            self.nonce,
                            &self.region.name,
                            *idx,
                            *epoch,
                            data,
                        );
                        self.stats.drained_seals += 1;
                        self.tele.drained_seals.inc();
                        results.push(BatchJobResult::Sealed {
                            idx: *idx,
                            ciphertext,
                            tag,
                        });
                    }
                    BatchJob::Open { idx, .. } => results.push(BatchJobResult::Opened {
                        idx: *idx,
                        plaintext: Err(ShefError::Fault(crate::fault::ShieldFault::LanePanic {
                            job: i,
                        })),
                    }),
                },
            }
        }
        results
    }

    /// Charges one batch's crypto to the ledger under the deterministic
    /// round-robin lane model and updates the parallel counters.
    ///
    /// Streaming cost lands on per-lane sub-lanes `{set}.l{k}` (the
    /// bottleneck model then sees the makespan, i.e. true overlap);
    /// a single lane charges the set's base lane exactly like the serial
    /// path. Blocking cost is the summed serial latency — lane count
    /// cannot hide a stalled accelerator.
    fn charge_crypto_batch(
        &mut self,
        ledger: &mut CostLedger,
        lens: &[usize],
        mode: AccessMode,
        lanes: usize,
    ) {
        let lanes = lanes.max(1);
        let batch = parallel_batch_cost(&self.region.engine_set, lens, lanes);
        match mode {
            AccessMode::Streaming => {
                if lanes == 1 {
                    ledger.add_busy(&self.lane, batch.per_lane[0]);
                } else {
                    for (k, &busy) in batch.per_lane.iter().enumerate() {
                        if busy > Cycles::ZERO {
                            ledger.add_busy(&format!("{}.l{k}", self.lane), busy);
                        }
                    }
                }
            }
            AccessMode::Blocking => ledger.add_serial(batch.serial_latency),
        }
        self.stats.parallel_batches += 1;
        self.stats.parallel_jobs += lens.len() as u64;
        self.stats.lanes = lanes as u64;
        self.stats.queue_depth_hwm = self.stats.queue_depth_hwm.max(lens.len() as u64);
        self.stats.lane_cycles_total += batch.total().0;
        self.stats.lane_cycles_max += batch.makespan().0;
        self.tele.parallel_batches.inc();
        self.tele.parallel_jobs.add(lens.len() as u64);
        self.tele.lanes.set(lanes as u64);
        self.tele.queue_depth_hwm.record_max(lens.len() as u64);
        self.tele.batch_jobs.observe(lens.len() as u64);
    }

    /// Phase 2+3 of a batch operation: runs the staged crypto on the
    /// pool, lands victim write-backs, installs verified fills in
    /// dispatch order, and settles the cost model. Returns opened
    /// plaintexts by chunk for output assembly.
    #[allow(clippy::too_many_arguments)]
    fn batch_execute(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        mode: AccessMode,
        pool: &WorkerPool,
        plan: BatchPlan,
        walk_error: Option<ShefError>,
    ) -> Result<HashMap<u32, Vec<u8>>, ShefError> {
        let BatchPlan {
            jobs,
            lens,
            apply,
            install,
            ..
        } = plan;
        let crypto_start = ledger.total_busy().0;
        let live: Vec<BatchJob> = jobs.into_iter().flatten().collect();
        let results = self.run_crypto_jobs(pool, live);
        // Charge the batch's crypto before the landing loop so the
        // crypto/landing span boundary falls between the two phases.
        // The ledger is purely additive, so charge order is irrelevant
        // to every total; only the logical clock's intermediate reading
        // moves.
        self.charge_crypto_batch(ledger, &lens, mode, pool.lanes());
        let landing_start = ledger.total_busy().0;
        self.tele
            .registry
            .trace("shield.engine.crypto", crypto_start, landing_start);
        let mut first_err: Option<ShefError> = None;
        let mut opened: HashMap<u32, Vec<u8>> = HashMap::new();
        for result in results {
            match result {
                BatchJobResult::Sealed {
                    idx,
                    ciphertext,
                    tag,
                } => {
                    // Victim write-backs always land, even when the batch
                    // fails: the evicted plaintext exists only here.
                    ledger.add_busy(
                        PORT_WRITE_LANE,
                        Cycles(
                            ((ciphertext.len() + tag.len()) as u64)
                                .div_ceil(SHELL_PORT_BYTES_PER_CYCLE),
                        ),
                    );
                    let landed = shell
                        .mem_write(dram, self.chunk_addr(idx), &ciphertext)
                        .and_then(|()| shell.mem_write(dram, self.tag_addr(idx), &tag));
                    match landed {
                        Ok(()) => {
                            self.stats.writebacks += 1;
                            self.tele.writebacks.inc();
                        }
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e.into());
                            }
                        }
                    }
                }
                BatchJobResult::Opened { idx, plaintext } => match plaintext {
                    Ok(pt) => {
                        // Past the first failure the serial walk would
                        // never have reached this chunk: skip the install.
                        if first_err.is_none() {
                            if install.contains(&idx) {
                                if let Some(line) = self.lines.get_mut(&idx) {
                                    line.data = pt.clone();
                                    if let Some((off, bytes)) = apply.get(&idx) {
                                        line.data[*off..off + bytes.len()].copy_from_slice(bytes);
                                    }
                                }
                            }
                            opened.insert(idx, pt);
                        }
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            // A contained lane fault is an infrastructure
                            // failure, not evidence of tampering: it
                            // surfaces but does not poison the set.
                            if !matches!(e, ShefError::Fault(_)) {
                                self.note_integrity_failure();
                            }
                            first_err = Some(e);
                        }
                    }
                },
            }
        }
        self.tele.registry.trace(
            "shield.engine.landing",
            landing_start,
            ledger.total_busy().0,
        );
        if first_err.is_some() || walk_error.is_some() {
            // Drop placeholder lines whose fill never installed.
            for idx in install {
                if !opened.contains_key(&idx) {
                    self.lines.remove(&idx);
                    if let Some(p) = self.lru.iter().position(|&i| i == idx) {
                        self.lru.remove(p);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if let Some(e) = walk_error {
            return Err(e);
        }
        Ok(opened)
    }

    /// Parallel counterpart of [`EngineSet::read`]: same semantics and
    /// DRAM end state, with chunk opens fanned across `pool`'s lanes.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] for the earliest chunk
    /// in dispatch order that fails authentication.
    #[allow(clippy::too_many_arguments)]
    pub fn read_chunks(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
        mode: AccessMode,
        pool: &WorkerPool,
    ) -> Result<Vec<u8>, ShefError> {
        debug_assert!(self.region.range.contains_span(addr, len));
        self.check_operational()?;
        enum Segment {
            Ready(Vec<u8>),
            Fill {
                idx: u32,
                offset: usize,
                take: usize,
            },
        }
        let walk_start = ledger.total_busy().0;
        let mut plan = BatchPlan::default();
        let mut segments: Vec<Segment> = Vec::new();
        let mut walk_error = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let idx = self.chunk_index(cur);
            let chunk_start = self.chunk_addr(idx);
            let offset = (cur - chunk_start) as usize;
            let take = ((end - cur) as usize).min(self.chunk_len(idx) - offset);
            let step = if self.lines.contains_key(&idx) {
                self.stats.hits += 1;
                self.tele.hits.inc();
                self.touch_lru(idx);
                let line = &self.lines[&idx];
                segments.push(Segment::Ready(line.data[offset..offset + take].to_vec()));
                Ok(())
            } else {
                self.batch_evict(shell, dram, ledger, mode, &mut plan)
                    .and_then(|()| {
                        self.batch_stage_fill(shell, dram, ledger, &mut plan, idx, mode, false)
                    })
                    .map(|()| segments.push(Segment::Fill { idx, offset, take }))
            };
            if let Err(e) = step {
                walk_error = Some(e);
                break;
            }
            ledger.add_busy(ACCEL_PORT_READ_LANE, buffer_hit_cost(take));
            cur += take as u64;
        }
        self.tele
            .registry
            .trace("shield.engine.walk", walk_start, ledger.total_busy().0);
        let opened = self.batch_execute(shell, dram, ledger, mode, pool, plan, walk_error)?;
        let mut out = Vec::with_capacity(len);
        for seg in segments {
            match seg {
                Segment::Ready(bytes) => out.extend_from_slice(&bytes),
                Segment::Fill { idx, offset, take } => {
                    let pt = opened.get(&idx).expect("fill opened on success path");
                    out.extend_from_slice(&pt[offset..offset + take]);
                }
            }
        }
        self.stats.bytes_read += len as u64;
        self.tele.bytes_read.add(len as u64);
        Ok(out)
    }

    /// Parallel counterpart of [`EngineSet::write`]: read-modify-write
    /// fills and victim seals are fanned across `pool`'s lanes.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] for the earliest chunk
    /// in dispatch order that fails authentication.
    #[allow(clippy::too_many_arguments)]
    pub fn write_chunks(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
        mode: AccessMode,
        pool: &WorkerPool,
    ) -> Result<(), ShefError> {
        debug_assert!(self.region.range.contains_span(addr, data.len()));
        self.check_operational()?;
        let walk_start = ledger.total_busy().0;
        let mut plan = BatchPlan::default();
        let mut walk_error = None;
        let mut cur = addr;
        let end = addr + data.len() as u64;
        let mut src = 0usize;
        while cur < end {
            let idx = self.chunk_index(cur);
            let chunk_start = self.chunk_addr(idx);
            let offset = (cur - chunk_start) as usize;
            let take = ((end - cur) as usize).min(self.chunk_len(idx) - offset);
            let full_overwrite = offset == 0 && take == self.chunk_len(idx);
            let zero_fill = !self.lines.contains_key(&idx)
                && (full_overwrite || self.region.engine_set.zero_fill_writes);
            let step = if self.lines.contains_key(&idx) {
                self.stats.hits += 1;
                self.tele.hits.inc();
                self.touch_lru(idx);
                let line = self.lines.get_mut(&idx).expect("resident");
                line.data[offset..offset + take].copy_from_slice(&data[src..src + take]);
                line.dirty = true;
                Ok(())
            } else if zero_fill {
                self.batch_evict(shell, dram, ledger, mode, &mut plan)
                    .map(|()| {
                        self.stats.zero_fills += 1;
                        self.tele.zero_fills.inc();
                        let len = self.chunk_len(idx);
                        let mut buf = vec![0u8; len];
                        buf[offset..offset + take].copy_from_slice(&data[src..src + take]);
                        self.lines.insert(
                            idx,
                            Line {
                                data: buf,
                                dirty: true,
                            },
                        );
                        self.touch_lru(idx);
                    })
            } else {
                self.batch_evict(shell, dram, ledger, mode, &mut plan)
                    .and_then(|()| {
                        self.batch_stage_fill(shell, dram, ledger, &mut plan, idx, mode, true)
                    })
                    .map(|()| {
                        plan.apply
                            .insert(idx, (offset, data[src..src + take].to_vec()));
                    })
            };
            if let Err(e) = step {
                walk_error = Some(e);
                break;
            }
            ledger.add_busy(ACCEL_PORT_WRITE_LANE, buffer_hit_cost(take));
            cur += take as u64;
            src += take;
        }
        self.tele
            .registry
            .trace("shield.engine.walk", walk_start, ledger.total_busy().0);
        self.batch_execute(shell, dram, ledger, mode, pool, plan, walk_error)?;
        self.stats.bytes_written += data.len() as u64;
        self.tele.bytes_written.add(data.len() as u64);
        Ok(())
    }

    /// Parallel counterpart of [`EngineSet::flush`]: dirty-line seals are
    /// fanned across `pool`'s lanes, write-backs land in LRU order.
    ///
    /// # Errors
    ///
    /// Propagates DRAM and epoch errors from write-back traffic; the
    /// buffer is left intact on error, exactly like the serial flush.
    pub fn flush_parallel(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        pool: &WorkerPool,
    ) -> Result<(), ShefError> {
        self.check_operational()?;
        let walk_start = ledger.total_busy().0;
        let mut plan = BatchPlan::default();
        let mut walk_error = None;
        let indices: Vec<u32> = self.lru.iter().copied().collect();
        for idx in indices {
            if !self.lines.get(&idx).is_some_and(|l| l.dirty) {
                continue;
            }
            match self.advance_epoch(shell, dram, ledger, idx, AccessMode::Streaming) {
                Ok(epoch) => {
                    let data = self.lines[&idx].data.clone();
                    plan.stage_seal(idx, epoch, data);
                    if let Some(l) = self.lines.get_mut(&idx) {
                        l.dirty = false;
                    }
                }
                Err(e) => {
                    walk_error = Some(e);
                    break;
                }
            }
        }
        self.tele
            .registry
            .trace("shield.engine.walk", walk_start, ledger.total_busy().0);
        self.batch_execute(
            shell,
            dram,
            ledger,
            AccessMode::Streaming,
            pool,
            plan,
            walk_error,
        )?;
        self.lines.clear();
        self.lru.clear();
        Ok(())
    }
}

/// A chunk-crypto job staged by a batch walk for pool execution.
enum BatchJob {
    Seal {
        idx: u32,
        epoch: u64,
        data: Vec<u8>,
    },
    Open {
        idx: u32,
        epoch: u64,
        ciphertext: Vec<u8>,
        tag: [u8; CHUNK_TAG_LEN],
    },
}

/// What came back from a lane for one staged job.
enum BatchJobResult {
    Sealed {
        idx: u32,
        ciphertext: Vec<u8>,
        tag: [u8; CHUNK_TAG_LEN],
    },
    Opened {
        idx: u32,
        plaintext: Result<Vec<u8>, ShefError>,
    },
}

/// Bookkeeping for one batch operation.
#[derive(Default)]
struct BatchPlan {
    /// Staged jobs in dispatch order; tombstoned (`None`) when a hazard
    /// forces inline materialization.
    jobs: Vec<Option<BatchJob>>,
    /// Plaintext length of every staged job (including materialized
    /// ones) in dispatch order — drives the round-robin lane-cost model.
    lens: Vec<usize>,
    /// Chunk → staged position of a victim seal not yet landed in DRAM.
    pending_seal: HashMap<u32, usize>,
    /// Chunk → staged position of a fill open not yet landed.
    pending_open: HashMap<u32, usize>,
    /// Write bytes to patch into a chunk once its fill lands.
    apply: HashMap<u32, (usize, Vec<u8>)>,
    /// Chunks whose opened plaintext installs into the buffer.
    install: HashSet<u32>,
}

impl BatchPlan {
    fn stage_seal(&mut self, idx: u32, epoch: u64, data: Vec<u8>) {
        self.pending_seal.insert(idx, self.jobs.len());
        self.lens.push(data.len());
        self.jobs.push(Some(BatchJob::Seal { idx, epoch, data }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::config::{EngineSetConfig, MemRange};
    use shef_fpga::clock::Cycles;

    fn setup(
        chunk: usize,
        buffer: usize,
        counters: bool,
        zero_fill: bool,
    ) -> (EngineSet, Shell, Dram, CostLedger, DataEncryptionKey) {
        let region = RegionConfig {
            name: "test".into(),
            range: MemRange::new(0x1000, 8192),
            engine_set: EngineSetConfig {
                chunk_size: chunk,
                buffer_bytes: buffer,
                counters,
                zero_fill_writes: zero_fill,
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([3u8; 32]);
        let es = EngineSet::new(region, 0, 0x10_0000, 0x20_0000, &dek);
        (es, Shell::new(), Dram::new(1 << 22), CostLedger::new(), dek)
    }

    /// Engine set whose region uses the Bonsai-Merkle-Tree defence.
    fn setup_merkle(
        chunk: usize,
        buffer: usize,
        node_cache_bytes: usize,
    ) -> (EngineSet, Shell, Dram, CostLedger, DataEncryptionKey) {
        let region = RegionConfig {
            name: "test".into(),
            range: MemRange::new(0x1000, 8192),
            engine_set: EngineSetConfig {
                chunk_size: chunk,
                buffer_bytes: buffer,
                merkle: Some(crate::shield::merkle::MerkleConfig {
                    arity: 8,
                    node_cache_bytes,
                }),
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([3u8; 32]);
        let es = EngineSet::new(region, 0, 0x10_0000, 0x20_0000, &dek);
        (es, Shell::new(), Dram::new(1 << 22), CostLedger::new(), dek)
    }

    /// Provisions plaintext into DRAM the way the Data Owner would.
    fn provision(es: &EngineSet, dram: &mut Dram, data: &[u8]) {
        let chunk = es.chunk_size();
        for (i, pt) in data.chunks(chunk).enumerate() {
            let (ct, tag) = seal_chunk(&es.key, es.nonce, &es.region.name, i as u32, 0, pt);
            dram.tamper_write(es.chunk_addr(i as u32), &ct);
            dram.tamper_write(es.tag_addr(i as u32), &tag);
        }
    }

    #[test]
    fn stats_ratios_defined_with_no_parallel_batches() {
        // Regression: fresh stats (no batch dispatched) must clamp to
        // 1.0, never NaN/inf, so reports can print them unguarded.
        let stats = EngineSetStats::default();
        assert_eq!(stats.parallel_speedup(), 1.0);
        assert_eq!(stats.lane_utilization(), 1.0);
        // lanes recorded but no cycles (e.g. all-hit batches).
        let stats = EngineSetStats {
            lanes: 4,
            ..EngineSetStats::default()
        };
        assert_eq!(stats.parallel_speedup(), 1.0);
        assert_eq!(stats.lane_utilization(), 1.0);
    }

    #[test]
    fn stats_ratios_survive_huge_cycle_counts() {
        // Regression: lane_cycles_max * lanes used to be a u64 multiply
        // that overflowed on long campaigns (panic in debug builds).
        let stats = EngineSetStats {
            lanes: 8,
            lane_cycles_max: u64::MAX / 2,
            lane_cycles_total: u64::MAX - 1,
            ..EngineSetStats::default()
        };
        let speedup = stats.parallel_speedup();
        let util = stats.lane_utilization();
        assert!(speedup.is_finite());
        assert!(util.is_finite());
        assert!((speedup - 2.0).abs() < 1e-9);
        assert!((util - 0.25).abs() < 1e-9);
    }

    #[test]
    fn telemetry_mirrors_engine_counters_and_phases() {
        let t = Telemetry::new();
        let pool = WorkerPool::new(2);
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, true, false);
        es.attach_telemetry(&t);
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        provision(&es, &mut dram, &data);
        let got = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                8192,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got, data);
        let r = t.report();
        assert_eq!(r.counters["shield.engine.misses"], 16);
        assert_eq!(r.counters["shield.engine.bytes_read"], 8192);
        // 16 fills through a 2-line buffer: 14 clean-fill cancellations
        // count as evictions in the batch walk.
        assert!(r.counters["shield.engine.evictions"] > 0);
        assert_eq!(r.counters["shield.engine.parallel_batches"], 1);
        assert_eq!(r.counters["shield.engine.parallel_jobs"], 16);
        assert_eq!(r.gauges["shield.engine.lanes"], 2);
        // All three batch phases traced, on a strictly ordered clock.
        for scope in [
            "shield.engine.walk",
            "shield.engine.crypto",
            "shield.engine.landing",
        ] {
            assert_eq!(r.scopes[scope].count, 1, "{scope}");
        }
        assert!(r.scopes["shield.engine.walk"].total_cycles > 0);
        assert!(r.scopes["shield.engine.crypto"].total_cycles > 0);
        let walk = &r.spans[0];
        assert_eq!(walk.scope, "shield.engine.walk");
        assert!(walk.end_cycles > walk.start_cycles);
    }

    #[test]
    fn detached_telemetry_reports_are_byte_identical() {
        // Two engine sets running the same trace against their own
        // private registries must produce identical JSON reports — the
        // engine-level half of the determinism guarantee.
        let run = || {
            let t = Telemetry::new();
            let pool = WorkerPool::new(4);
            let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, true, false);
            es.attach_telemetry(&t);
            let data: Vec<u8> = (0..8192u32).map(|i| (i * 13 % 256) as u8).collect();
            provision(&es, &mut dram, &data);
            es.write_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1200,
                &[7u8; 3000],
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
            es.flush_parallel(&mut shell, &mut dram, &mut ledger, &pool)
                .unwrap();
            t.report().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn read_provisioned_data() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, false, false);
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        provision(&es, &mut dram, &data);
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                8192,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, data);
        assert_eq!(es.stats().misses, 16);
    }

    #[test]
    fn unaligned_reads() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, false, false);
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 256) as u8).collect();
        provision(&es, &mut dram, &data);
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 300,
                700,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, &data[300..1000]);
    }

    #[test]
    fn write_then_read_back_through_dram() {
        let (mut es, mut shell, mut dram, mut ledger, dek) = setup(512, 1024, false, true);
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 199) as u8).collect();
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // A brand-new engine set (fresh cache) must read the same bytes.
        let region = es.region().clone();
        let mut es2 = EngineSet::new(region, 0, 0x10_0000, 0x20_0000, &dek);
        let got = es2
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                2048,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, payload);
        // Ciphertext in DRAM differs from plaintext.
        assert_ne!(dram.tamper_read(0x1000, 2048), payload);
    }

    #[test]
    fn buffer_hits_avoid_dram() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, false, false);
        let data = vec![0x5au8; 8192];
        provision(&es, &mut dram, &data);
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        let before = dram.stats().bytes_read;
        // Re-read the same chunk: served from the buffer.
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 128,
                256,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(dram.stats().bytes_read, before);
        assert_eq!(es.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_works() {
        // Buffer holds 2 lines; touching 3 chunks evicts the oldest.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, false);
        let data = vec![1u8; 8192];
        provision(&es, &mut dram, &data);
        for i in 0..3u64 {
            let _ = es
                .read(
                    &mut shell,
                    &mut dram,
                    &mut ledger,
                    0x1000 + i * 512,
                    512,
                    AccessMode::Streaming,
                )
                .unwrap();
        }
        // Chunk 0 was evicted: re-reading misses again.
        let misses = es.stats().misses;
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(es.stats().misses, misses + 1);
    }

    #[test]
    fn spoofed_dram_detected() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, false);
        provision(&es, &mut dram, &vec![7u8; 8192]);
        // Adversary flips a ciphertext bit.
        let mut byte = dram.tamper_read(0x1100, 1);
        byte[0] ^= 0x80;
        dram.tamper_write(0x1100, &byte);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
        assert_eq!(es.stats().integrity_failures, 1);
    }

    #[test]
    fn spliced_chunks_detected() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, false);
        provision(&es, &mut dram, &vec![9u8; 8192]);
        // Copy chunk 0's ciphertext+tag over chunk 1's.
        let c0 = dram.tamper_read(0x1000, 512);
        let t0 = dram.tamper_read(0x10_0000, 16);
        dram.tamper_write(0x1000 + 512, &c0);
        dram.tamper_write(0x10_0000 + 16, &t0);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 512,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn replay_detected_with_counters() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, true, false);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        // Snapshot epoch-0 ciphertext+tag of chunk 0.
        let old_ct = dram.tamper_read(0x1000, 512);
        let old_tag = dram.tamper_read(0x10_0000, 16);
        // Legitimate write bumps the on-chip counter to 1.
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[2u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Fresh data verifies.
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, vec![2u8; 512]);
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Adversary replays the old snapshot: must be detected.
        dram.tamper_write(0x1000, &old_ct);
        dram.tamper_write(0x10_0000, &old_tag);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn replay_not_detected_without_counters() {
        // Documents the paper's point: read-write regions need counters.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, false, false);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        let old_ct = dram.tamper_read(0x1000, 512);
        let old_tag = dram.tamper_read(0x10_0000, 16);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[2u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        dram.tamper_write(0x1000, &old_ct);
        dram.tamper_write(0x10_0000, &old_tag);
        // The stale data verifies — replay goes unnoticed.
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, vec![1u8; 512]);
    }

    #[test]
    fn merkle_write_read_round_trip() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup_merkle(512, 1024, 0);
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 197) as u8).collect();
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                2048,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, payload);
        let ms = es.merkle_stats().expect("merkle enabled");
        assert!(ms.node_writes > 0, "bumps must rewrite tree nodes");
    }

    #[test]
    fn merkle_detects_replay() {
        // Same scenario as `replay_detected_with_counters`, but the
        // counters live in DRAM under the tree.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup_merkle(512, 512, 0);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        let old_ct = dram.tamper_read(0x1000, 512);
        let old_tag = dram.tamper_read(0x10_0000, 16);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[2u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        dram.tamper_write(0x1000, &old_ct);
        dram.tamper_write(0x10_0000, &old_tag);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn merkle_detects_tree_rollback() {
        // The stronger attack: roll back data, tag, AND the DRAM-resident
        // counter tree together. Only the on-chip root defeats this.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup_merkle(512, 512, 0);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        // Force tree initialization, then snapshot everything.
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let snap_data = dram.tamper_read(0x1000, 512);
        let snap_tag = dram.tamper_read(0x10_0000, 16);
        let snap_tree = dram.tamper_read(0x20_0000, 4096);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[9u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        dram.tamper_write(0x1000, &snap_data);
        dram.tamper_write(0x10_0000, &snap_tag);
        dram.tamper_write(0x20_0000, &snap_tree);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
        assert!(es.stats().integrity_failures >= 1);
    }

    #[test]
    fn merkle_costs_exceed_onchip_counters() {
        // The paper's argument (§5.2.2): tree-node DRAM traffic makes the
        // BMT strictly more expensive than on-chip counters.
        let run = |mut es: EngineSet, mut shell: Shell, mut dram: Dram| {
            let mut ledger = CostLedger::new();
            for round in 0..4u8 {
                for i in 0..16u64 {
                    es.write(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        0x1000 + i * 512,
                        &[round; 512],
                        AccessMode::Streaming,
                    )
                    .unwrap();
                }
                es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
            }
            ledger.lane(es.lane())
        };
        let (es_c, shell_c, dram_c, _, _) = setup(512, 512, true, false);
        let (es_m, shell_m, dram_m, _, _) = setup_merkle(512, 512, 0);
        let counters_cost = run(es_c, shell_c, dram_c);
        let merkle_cost = run(es_m, shell_m, dram_m);
        assert!(
            merkle_cost > counters_cost,
            "BMT {merkle_cost:?} must cost more than on-chip counters {counters_cost:?}"
        );
    }

    #[test]
    fn zero_fill_skips_dram_reads() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, true);
        // Partial write to an unprovisioned chunk with zero_fill: no read.
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[9u8; 100],
            AccessMode::Streaming,
        )
        .unwrap();
        assert_eq!(dram.stats().bytes_read, 0);
        assert_eq!(es.stats().zero_fills, 1);
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Readback sees the write plus zeros.
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(&got[..100], &[9u8; 100]);
        assert_eq!(&got[100..], &vec![0u8; 412][..]);
    }

    #[test]
    fn blocking_mode_charges_serial_cycles() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(4096, 4096, false, false);
        provision(&es, &mut dram, &vec![3u8; 8192]);
        let serial_before = ledger.serial();
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                4096,
                AccessMode::Blocking,
            )
            .unwrap();
        assert!(
            ledger.serial() > serial_before,
            "blocking access must stall"
        );
    }

    #[test]
    fn streaming_mode_charges_lane_cycles() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, false, false);
        provision(&es, &mut dram, &vec![3u8; 8192]);
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert!(ledger.lane(es.lane()) > Cycles::ZERO);
    }

    /// Serial-comparable slice of the stats (the parallel-only counters
    /// exist only on the batch path, so they are excluded).
    fn core_stats(s: EngineSetStats) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            s.hits,
            s.misses,
            s.writebacks,
            s.integrity_failures,
            s.bytes_read,
            s.bytes_written,
            s.zero_fills,
        )
    }

    #[test]
    fn parallel_read_matches_serial() {
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 13 % 256) as u8).collect();
        let (mut es_s, mut shell_s, mut dram_s, mut ledger_s, _) = setup(512, 2048, true, false);
        let (mut es_p, mut shell_p, mut dram_p, mut ledger_p, _) = setup(512, 2048, true, false);
        provision(&es_s, &mut dram_s, &data);
        provision(&es_p, &mut dram_p, &data);
        let pool = WorkerPool::new(4);
        for (addr, len) in [(0x1000u64, 8192usize), (0x1000 + 300, 700), (0x1000, 512)] {
            let serial = es_s
                .read(
                    &mut shell_s,
                    &mut dram_s,
                    &mut ledger_s,
                    addr,
                    len,
                    AccessMode::Streaming,
                )
                .unwrap();
            let parallel = es_p
                .read_chunks(
                    &mut shell_p,
                    &mut dram_p,
                    &mut ledger_p,
                    addr,
                    len,
                    AccessMode::Streaming,
                    &pool,
                )
                .unwrap();
            assert_eq!(serial, parallel);
        }
        assert_eq!(core_stats(es_s.stats()), core_stats(es_p.stats()));
        // Total crypto work is conserved: the sub-lanes sum to the
        // serial lane's cycles.
        assert_eq!(
            ledger_p.group_total(es_p.lane()),
            ledger_s.lane(es_s.lane())
        );
        // ...but the makespan (busiest sub-lane) is strictly smaller.
        assert!(ledger_p.group_makespan(es_p.lane()) < ledger_s.lane(es_s.lane()));
        assert!(es_p.stats().parallel_speedup() > 1.0);
    }

    #[test]
    fn parallel_write_matches_serial() {
        // Mix of zero-fill full overwrites and read-modify-write fills,
        // with evictions (buffer holds 2 of 16 chunks).
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 31 % 256) as u8).collect();
        let (mut es_s, mut shell_s, mut dram_s, mut ledger_s, _) = setup(512, 1024, true, false);
        let (mut es_p, mut shell_p, mut dram_p, mut ledger_p, _) = setup(512, 1024, true, false);
        provision(&es_s, &mut dram_s, &data);
        provision(&es_p, &mut dram_p, &data);
        let pool = WorkerPool::new(4);
        let payload: Vec<u8> = (0..3000u32).map(|i| (i * 7 % 256) as u8).collect();
        // Unaligned span: head and tail chunks are RMW, middle chunks
        // are full overwrites.
        es_s.write(
            &mut shell_s,
            &mut dram_s,
            &mut ledger_s,
            0x1000 + 200,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es_p.write_chunks(
            &mut shell_p,
            &mut dram_p,
            &mut ledger_p,
            0x1000 + 200,
            &payload,
            AccessMode::Streaming,
            &pool,
        )
        .unwrap();
        es_s.flush(&mut shell_s, &mut dram_s, &mut ledger_s)
            .unwrap();
        es_p.flush_parallel(&mut shell_p, &mut dram_p, &mut ledger_p, &pool)
            .unwrap();
        assert_eq!(core_stats(es_s.stats()), core_stats(es_p.stats()));
        // Identical keys + identical epoch sequences mean the DRAM end
        // state (ciphertext and tag arena) must match byte for byte.
        assert_eq!(
            dram_s.tamper_read(0x1000, 8192),
            dram_p.tamper_read(0x1000, 8192)
        );
        assert_eq!(
            dram_s.tamper_read(0x10_0000, 16 * CHUNK_TAG_LEN),
            dram_p.tamper_read(0x10_0000, 16 * CHUNK_TAG_LEN)
        );
        // And both live sets decrypt back to the same plaintext.
        let got_s = es_s
            .read(
                &mut shell_s,
                &mut dram_s,
                &mut ledger_s,
                0x1000,
                8192,
                AccessMode::Streaming,
            )
            .unwrap();
        let got_p = es_p
            .read_chunks(
                &mut shell_p,
                &mut dram_p,
                &mut ledger_p,
                0x1000,
                8192,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got_s, got_p);
        assert_eq!(&got_p[200..3200], &payload[..]);
    }

    #[test]
    fn same_batch_evict_then_refill_lands_fresh_bytes() {
        // Hazard A: with a 1-line buffer, reading [chunk 0, chunk 1]
        // while chunk 1 sits dirty in the buffer first evicts chunk 1
        // (staged seal), then chunk 1's own fill must observe that seal.
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, true, false);
        provision(&es, &mut dram, &data);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1200,
            &[0xAB; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        let pool = WorkerPool::new(4);
        let got = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                1024,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(&got[..512], &data[..512]);
        assert_eq!(&got[512..], &[0xABu8; 512][..]);
        assert_eq!(es.stats().writebacks, 1);
    }

    #[test]
    fn evicting_inflight_rmw_placeholder_matches_serial() {
        // Hazard B: with a 1-line buffer, an unaligned write across two
        // chunks evicts chunk 0's read-modify-write placeholder while its
        // fill is still staged.
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 3 % 256) as u8).collect();
        let (mut es_s, mut shell_s, mut dram_s, mut ledger_s, _) = setup(512, 512, true, false);
        let (mut es_p, mut shell_p, mut dram_p, mut ledger_p, _) = setup(512, 512, true, false);
        provision(&es_s, &mut dram_s, &data);
        provision(&es_p, &mut dram_p, &data);
        let pool = WorkerPool::new(4);
        let payload = [0xCD; 512];
        es_s.write(
            &mut shell_s,
            &mut dram_s,
            &mut ledger_s,
            0x1000 + 256,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es_p.write_chunks(
            &mut shell_p,
            &mut dram_p,
            &mut ledger_p,
            0x1000 + 256,
            &payload,
            AccessMode::Streaming,
            &pool,
        )
        .unwrap();
        es_s.flush(&mut shell_s, &mut dram_s, &mut ledger_s)
            .unwrap();
        es_p.flush_parallel(&mut shell_p, &mut dram_p, &mut ledger_p, &pool)
            .unwrap();
        assert_eq!(core_stats(es_s.stats()), core_stats(es_p.stats()));
        let got_s = es_s
            .read(
                &mut shell_s,
                &mut dram_s,
                &mut ledger_s,
                0x1000,
                1024,
                AccessMode::Streaming,
            )
            .unwrap();
        let got_p = es_p
            .read_chunks(
                &mut shell_p,
                &mut dram_p,
                &mut ledger_p,
                0x1000,
                1024,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got_s, got_p);
        assert_eq!(&got_p[256..768], &payload[..]);
    }

    #[test]
    fn parallel_read_reports_earliest_corrupt_chunk() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 4096, false, false);
        provision(&es, &mut dram, &vec![7u8; 8192]);
        // Corrupt chunks 2 and 5; the batch must report chunk 2.
        for idx in [2u64, 5] {
            let addr = 0x1000 + idx * 512;
            let mut byte = dram.tamper_read(addr, 1);
            byte[0] ^= 1;
            dram.tamper_write(addr, &byte);
        }
        let pool = WorkerPool::new(4);
        let err = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                8192,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap_err();
        let ShefError::IntegrityViolation(msg) = err else {
            panic!("expected integrity violation");
        };
        assert!(msg.contains("chunk 2"), "earliest chunk wins: {msg}");
        assert_eq!(es.stats().integrity_failures, 1);
        // The detection poisons the set: follow-up traffic is rejected
        // until the containment state is explicitly cleared.
        assert!(es.poisoned());
        let rejected = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                1024,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap_err();
        assert!(matches!(
            rejected,
            ShefError::Fault(crate::fault::ShieldFault::Poisoned { .. })
        ));
        assert_eq!(es.stats().contained_rejects, 1);
        // Clearing the poison drops buffered lines; the untampered
        // prefix then refills and verifies from DRAM as usual.
        es.clear_poison();
        let got = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                1024,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got, vec![7u8; 1024]);
        assert_eq!(es.stats().integrity_failures, 1);
    }

    #[test]
    fn serial_integrity_failure_poisons_until_cleared() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 4096, false, false);
        provision(&es, &mut dram, &vec![7u8; 8192]);
        let addr = 0x1000 + 3 * 512;
        let mut byte = dram.tamper_read(addr, 1);
        byte[0] ^= 0x80;
        dram.tamper_write(addr, &byte);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                addr,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
        assert!(es.poisoned());
        // Reads, writes and flushes are all fail-stopped.
        let r = es.read(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            16,
            AccessMode::Streaming,
        );
        assert!(matches!(r, Err(ShefError::Fault(_))));
        let w = es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[1, 2, 3],
            AccessMode::Streaming,
        );
        assert!(matches!(w, Err(ShefError::Fault(_))));
        let fl = es.flush(&mut shell, &mut dram, &mut ledger);
        assert!(matches!(fl, Err(ShefError::Fault(_))));
        assert_eq!(es.stats().contained_rejects, 3);
        es.clear_poison();
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, vec![7u8; 512]);
    }

    #[test]
    fn one_shot_lane_panic_recovers_transparently() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 4096, false, false);
        provision(&es, &mut dram, &vec![9u8; 8192]);
        let pool = WorkerPool::new(4);
        pool.arm_lane_panic(0);
        let got = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                4096,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got, vec![9u8; 4096]);
        let stats = es.stats();
        assert_eq!(stats.lane_panics, 1);
        assert_eq!(stats.recovered_retries, 1);
        assert_eq!(stats.integrity_failures, 0);
        assert!(!es.poisoned(), "a lane fault is not an integrity event");
    }

    #[test]
    fn sticky_lane_panic_drains_batch_and_surfaces_fault() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 4096, false, false);
        provision(&es, &mut dram, &vec![9u8; 8192]);
        let pool = WorkerPool::new(4);
        // Job 0 of the batch (the open of chunk 0) dies on its lane AND
        // on the inline retry: the op must fail with a contained fault,
        // not deadlock or cascade panics into sibling lanes.
        pool.arm_lane_panic_sticky(0);
        let err = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                4096,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ShefError::Fault(crate::fault::ShieldFault::LanePanic { job: 0 })
        ));
        let stats = es.stats();
        assert_eq!(stats.lane_panics, 2, "attempt + retry");
        assert_eq!(stats.integrity_failures, 0);
        assert!(!es.poisoned());
        // The set stays live: the same read succeeds once the fault is
        // gone (the sticky arm targeted an already-consumed job index).
        let got = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                4096,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got, vec![9u8; 4096]);
    }

    #[test]
    fn sticky_panic_on_victim_seal_still_lands_the_writeback() {
        // One-line buffer: writing chunk 0 then touching chunk 1 evicts
        // chunk 0, staging its seal as batch job 0. Killing that job
        // (attempt + retry) must not lose the evicted plaintext — the
        // drain fallback recomputes the seal inline.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, false, false);
        provision(&es, &mut dram, &vec![0u8; 8192]);
        let pool = WorkerPool::new(4);
        let payload = vec![0xABu8; 512];
        es.write_chunks(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &payload,
            AccessMode::Streaming,
            &pool,
        )
        .unwrap();
        pool.arm_lane_panic_sticky(0);
        let got = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 512,
                512,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got, vec![0u8; 512]);
        let stats = es.stats();
        assert_eq!(stats.drained_seals, 1);
        assert_eq!(stats.lane_panics, 2);
        pool.disarm_lane_panic();
        // The sealed chunk 0 round-trips from DRAM with the new bytes.
        let back = es
            .read_chunks(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn blocking_batches_charge_the_same_stall_as_serial() {
        // Lane count must not hide a stalled accelerator: Blocking-mode
        // serial latency is lane-count invariant and equals the serial
        // path's.
        let data = vec![9u8; 8192];
        let (mut es_s, mut shell_s, mut dram_s, mut ledger_s, _) = setup(512, 4096, false, false);
        let (mut es_p, mut shell_p, mut dram_p, mut ledger_p, _) = setup(512, 4096, false, false);
        provision(&es_s, &mut dram_s, &data);
        provision(&es_p, &mut dram_p, &data);
        let pool = WorkerPool::new(8);
        let _ = es_s
            .read(
                &mut shell_s,
                &mut dram_s,
                &mut ledger_s,
                0x1000,
                8192,
                AccessMode::Blocking,
            )
            .unwrap();
        let _ = es_p
            .read_chunks(
                &mut shell_p,
                &mut dram_p,
                &mut ledger_p,
                0x1000,
                8192,
                AccessMode::Blocking,
                &pool,
            )
            .unwrap();
        assert_eq!(ledger_p.serial(), ledger_s.serial());
    }

    #[test]
    fn parallel_merkle_round_trip_matches_serial() {
        let (mut es_s, mut shell_s, mut dram_s, mut ledger_s, _) = setup_merkle(512, 1024, 0);
        let (mut es_p, mut shell_p, mut dram_p, mut ledger_p, _) = setup_merkle(512, 1024, 0);
        let pool = WorkerPool::new(3);
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 193) as u8).collect();
        es_s.write(
            &mut shell_s,
            &mut dram_s,
            &mut ledger_s,
            0x1000,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es_p.write_chunks(
            &mut shell_p,
            &mut dram_p,
            &mut ledger_p,
            0x1000,
            &payload,
            AccessMode::Streaming,
            &pool,
        )
        .unwrap();
        es_s.flush(&mut shell_s, &mut dram_s, &mut ledger_s)
            .unwrap();
        es_p.flush_parallel(&mut shell_p, &mut dram_p, &mut ledger_p, &pool)
            .unwrap();
        let got_s = es_s
            .read(
                &mut shell_s,
                &mut dram_s,
                &mut ledger_s,
                0x1000,
                4096,
                AccessMode::Streaming,
            )
            .unwrap();
        let got_p = es_p
            .read_chunks(
                &mut shell_p,
                &mut dram_p,
                &mut ledger_p,
                0x1000,
                4096,
                AccessMode::Streaming,
                &pool,
            )
            .unwrap();
        assert_eq!(got_s, payload);
        assert_eq!(got_p, payload);
        assert_eq!(core_stats(es_s.stats()), core_stats(es_p.stats()));
    }

    #[test]
    fn partial_tail_chunk() {
        // Region of 8192 with 4096-byte chunks has exactly 2 chunks; make
        // a region with a 1000-byte tail instead.
        let region = RegionConfig {
            name: "tail".into(),
            range: MemRange::new(0, 4096 + 1000),
            engine_set: EngineSetConfig {
                chunk_size: 4096,
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([4u8; 32]);
        let mut es = EngineSet::new(region, 0, 0x20_0000, 0x30_0000, &dek);
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 22);
        let mut ledger = CostLedger::new();
        let data: Vec<u8> = (0..5096u32).map(|i| (i % 97) as u8).collect();
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0,
            &data,
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                5096,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, data);
    }
}
