//! Engine-set runtime: the per-region datapath of the Shield.
//!
//! One [`EngineSet`] guards one memory region (§5.2.2): it holds the
//! region's AES/MAC engines, an optional on-chip buffer ("a cache with a
//! line size of `C_mem`"), and optional freshness counters. All DRAM
//! traffic flows through the (untrusted, interposable) Shell.

use std::collections::{HashMap, VecDeque};

use shef_crypto::authenc::AuthEncKey;
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

use super::chunk::{open_chunk, seal_chunk, CHUNK_TAG_LEN};
use super::config::RegionConfig;
use super::keys::DataEncryptionKey;
use super::merkle::{MerkleStats, MerkleTree};
use super::timing::{
    buffer_hit_cost, chunk_crypto_cost, ACCEL_PORT_READ_LANE, ACCEL_PORT_WRITE_LANE,
    PORT_READ_LANE, PORT_WRITE_LANE, SHELL_PORT_BYTES_PER_CYCLE,
};
use crate::ShefError;
use shef_fpga::clock::Cycles;

/// How an accelerator consumes an access, for the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// Pipelined streaming: the accelerator overlaps crypto with
    /// compute; cost is engine-set occupancy.
    #[default]
    Streaming,
    /// Blocking: the accelerator stalls until the chunk is verified
    /// (DNNWeaver's weight reads, §6.2.4); cost is serial latency.
    Blocking,
}

/// Counters exposed for tests and the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSetStats {
    /// Buffer hits.
    pub hits: u64,
    /// Buffer misses (chunk fills from DRAM).
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Integrity failures detected.
    pub integrity_failures: u64,
    /// Plaintext bytes served to the accelerator.
    pub bytes_read: u64,
    /// Plaintext bytes accepted from the accelerator.
    pub bytes_written: u64,
    /// Zero-filled write allocations (streaming-write optimization).
    pub zero_fills: u64,
}

#[derive(Debug, Clone)]
struct Line {
    data: Vec<u8>,
    dirty: bool,
}

/// The runtime state of one engine set.
pub struct EngineSet {
    region: RegionConfig,
    tag_base: u64,
    key: AuthEncKey,
    nonce: [u8; 8],
    lane: String,
    lines: HashMap<u32, Line>,
    lru: VecDeque<u32>,
    capacity_lines: usize,
    counters: HashMap<u32, u64>,
    merkle: Option<MerkleTree>,
    stats: EngineSetStats,
}

impl core::fmt::Debug for EngineSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EngineSet")
            .field("region", &self.region.name)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl EngineSet {
    /// Builds the engine set for `region`, deriving its working keys from
    /// the provisioned Data Encryption Key. `merkle_base` is the DRAM
    /// address of the region's tree arena, used only when the engine set
    /// selects the Bonsai-Merkle-Tree replay defence.
    #[must_use]
    pub fn new(
        region: RegionConfig,
        region_index: usize,
        tag_base: u64,
        merkle_base: u64,
        dek: &DataEncryptionKey,
    ) -> Self {
        let key = dek.region_key(&region);
        let nonce = dek.region_nonce(&region);
        let chunk = region.engine_set.chunk_size;
        let capacity_lines = if region.engine_set.buffer_bytes == 0 {
            // No buffer: a single in-flight chunk register.
            1
        } else {
            (region.engine_set.buffer_bytes / chunk).max(1)
        };
        let lane = format!("shield.{}[{}]", region.name, region_index);
        let merkle = region.engine_set.merkle.map(|cfg| {
            let chunks = region.range.len.div_ceil(chunk as u64);
            MerkleTree::new(
                cfg,
                dek.region_tree_key(&region),
                merkle_base,
                chunks,
                &lane,
            )
        });
        EngineSet {
            lane,
            region,
            tag_base,
            key,
            nonce,
            lines: HashMap::new(),
            lru: VecDeque::new(),
            capacity_lines,
            counters: HashMap::new(),
            merkle,
            stats: EngineSetStats::default(),
        }
    }

    /// The protected region.
    #[must_use]
    pub fn region(&self) -> &RegionConfig {
        &self.region
    }

    /// Runtime counters.
    #[must_use]
    pub fn stats(&self) -> EngineSetStats {
        self.stats
    }

    /// The cost-ledger lane this set charges.
    #[must_use]
    pub fn lane(&self) -> &str {
        &self.lane
    }

    /// Merkle-tree statistics, when the region uses the Bonsai-Merkle-
    /// Tree replay defence.
    #[must_use]
    pub fn merkle_stats(&self) -> Option<MerkleStats> {
        self.merkle.as_ref().map(MerkleTree::stats)
    }

    /// Drops the tree's verified-node cache (models a power event; test
    /// hook for replay-detection scenarios).
    pub fn clear_merkle_cache(&mut self) {
        if let Some(tree) = &mut self.merkle {
            tree.clear_cache();
        }
    }

    fn chunk_size(&self) -> usize {
        self.region.engine_set.chunk_size
    }

    fn chunk_index(&self, addr: u64) -> u32 {
        ((addr - self.region.range.start) / self.chunk_size() as u64) as u32
    }

    fn chunk_addr(&self, idx: u32) -> u64 {
        self.region.range.start + idx as u64 * self.chunk_size() as u64
    }

    fn chunk_len(&self, idx: u32) -> usize {
        let start = self.chunk_addr(idx);
        (self.region.range.end() - start).min(self.chunk_size() as u64) as usize
    }

    fn tag_addr(&self, idx: u32) -> u64 {
        self.tag_base + idx as u64 * CHUNK_TAG_LEN as u64
    }

    /// Current write epoch of chunk `idx`. On-chip counters answer from
    /// the register file for free; the Merkle baseline walks an
    /// authenticated path of DRAM-resident tree nodes.
    fn current_epoch(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<u64, ShefError> {
        if self.region.engine_set.counters {
            return Ok(self.counters.get(&idx).copied().unwrap_or(0));
        }
        let Some(tree) = &mut self.merkle else {
            return Ok(0);
        };
        match tree.counter(shell, dram, ledger, idx, mode) {
            Ok(epoch) => Ok(epoch),
            Err(e) => {
                if matches!(e, ShefError::IntegrityViolation(_)) {
                    self.stats.integrity_failures += 1;
                }
                Err(e)
            }
        }
    }

    /// Advances the write epoch of chunk `idx`, returning the new value.
    fn advance_epoch(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<u64, ShefError> {
        if self.region.engine_set.counters {
            let e = self.counters.entry(idx).or_insert(0);
            *e += 1;
            return Ok(*e);
        }
        let Some(tree) = &mut self.merkle else {
            return Ok(0);
        };
        match tree.bump(shell, dram, ledger, idx, mode) {
            Ok(epoch) => Ok(epoch),
            Err(e) => {
                if matches!(e, ShefError::IntegrityViolation(_)) {
                    self.stats.integrity_failures += 1;
                }
                Err(e)
            }
        }
    }

    fn charge_crypto(&self, ledger: &mut CostLedger, len: usize, mode: AccessMode) {
        let cost = chunk_crypto_cost(&self.region.engine_set, len);
        match mode {
            AccessMode::Streaming => ledger.add_busy(&self.lane, cost.lane),
            AccessMode::Blocking => ledger.add_serial(cost.latency),
        }
    }

    fn touch_lru(&mut self, idx: u32) {
        if let Some(pos) = self.lru.iter().position(|&i| i == idx) {
            self.lru.remove(pos);
        }
        self.lru.push_back(idx);
    }

    fn make_room(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        while self.lines.len() >= self.capacity_lines {
            let victim = self
                .lru
                .pop_front()
                .expect("lines non-empty implies lru non-empty");
            self.writeback_line(shell, dram, ledger, victim, mode)?;
            self.lines.remove(&victim);
        }
        Ok(())
    }

    fn writeback_line(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        let line = match self.lines.get(&idx) {
            Some(l) if l.dirty => l.data.clone(),
            _ => return Ok(()),
        };
        // Bump the epoch: every rewrite uses a fresh IV and tag.
        let new_epoch = self.advance_epoch(shell, dram, ledger, idx, mode)?;
        let (ciphertext, tag) = seal_chunk(
            &self.key,
            self.nonce,
            &self.region.name,
            idx,
            new_epoch,
            &line,
        );
        self.charge_crypto(ledger, line.len(), mode);
        ledger.add_busy(
            PORT_WRITE_LANE,
            Cycles(((ciphertext.len() + tag.len()) as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        shell.mem_write(dram, self.chunk_addr(idx), &ciphertext)?;
        shell.mem_write(dram, self.tag_addr(idx), &tag)?;
        self.stats.writebacks += 1;
        if let Some(l) = self.lines.get_mut(&idx) {
            l.dirty = false;
        }
        Ok(())
    }

    /// Ensures chunk `idx` is resident; `zero_fill` skips the DRAM read
    /// for full-overwrite writes.
    fn ensure_line(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        idx: u32,
        mode: AccessMode,
        zero_fill: bool,
    ) -> Result<(), ShefError> {
        if self.lines.contains_key(&idx) {
            self.stats.hits += 1;
            self.touch_lru(idx);
            return Ok(());
        }
        self.make_room(shell, dram, ledger, mode)?;
        let len = self.chunk_len(idx);
        let line = if zero_fill {
            self.stats.zero_fills += 1;
            Line {
                data: vec![0u8; len],
                dirty: false,
            }
        } else {
            self.stats.misses += 1;
            ledger.add_busy(
                PORT_READ_LANE,
                Cycles(((len + CHUNK_TAG_LEN) as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
            );
            let ciphertext = shell.mem_read(dram, self.chunk_addr(idx), len)?;
            let tag_bytes = shell.mem_read(dram, self.tag_addr(idx), CHUNK_TAG_LEN)?;
            let tag: [u8; CHUNK_TAG_LEN] = tag_bytes
                .try_into()
                .expect("tag read returns requested length");
            let epoch = self.current_epoch(shell, dram, ledger, idx, mode)?;
            self.charge_crypto(ledger, len, mode);
            let plaintext = open_chunk(
                &self.key,
                self.nonce,
                &self.region.name,
                idx,
                epoch,
                &ciphertext,
                &tag,
            )
            .inspect_err(|_| {
                self.stats.integrity_failures += 1;
            })?;
            Line {
                data: plaintext,
                dirty: false,
            }
        };
        self.lines.insert(idx, line);
        self.touch_lru(idx);
        Ok(())
    }

    /// Reads `len` plaintext bytes at `addr` (must lie in the region).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] if any covered chunk
    /// fails authentication.
    pub fn read(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
        mode: AccessMode,
    ) -> Result<Vec<u8>, ShefError> {
        debug_assert!(self.region.range.contains_span(addr, len));
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let idx = self.chunk_index(cur);
            let chunk_start = self.chunk_addr(idx);
            let offset = (cur - chunk_start) as usize;
            let take = ((end - cur) as usize).min(self.chunk_len(idx) - offset);
            self.ensure_line(shell, dram, ledger, idx, mode, false)?;
            let line = &self.lines[&idx];
            out.extend_from_slice(&line.data[offset..offset + take]);
            ledger.add_busy(ACCEL_PORT_READ_LANE, buffer_hit_cost(take));
            cur += take as u64;
        }
        self.stats.bytes_read += len as u64;
        Ok(out)
    }

    /// Writes plaintext bytes at `addr` (must lie in the region).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::IntegrityViolation`] if a read-modify-write
    /// fill fails authentication.
    pub fn write(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        debug_assert!(self.region.range.contains_span(addr, data.len()));
        let mut cur = addr;
        let end = addr + data.len() as u64;
        let mut src = 0usize;
        while cur < end {
            let idx = self.chunk_index(cur);
            let chunk_start = self.chunk_addr(idx);
            let offset = (cur - chunk_start) as usize;
            let take = ((end - cur) as usize).min(self.chunk_len(idx) - offset);
            let full_overwrite = offset == 0 && take == self.chunk_len(idx);
            let zero_fill = !self.lines.contains_key(&idx)
                && (full_overwrite || self.region.engine_set.zero_fill_writes);
            self.ensure_line(shell, dram, ledger, idx, mode, zero_fill)?;
            let line = self.lines.get_mut(&idx).expect("just ensured");
            line.data[offset..offset + take].copy_from_slice(&data[src..src + take]);
            line.dirty = true;
            ledger.add_busy(ACCEL_PORT_WRITE_LANE, buffer_hit_cost(take));
            cur += take as u64;
            src += take;
        }
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Writes back all dirty lines and clears the buffer.
    ///
    /// # Errors
    ///
    /// Propagates DRAM errors from write-back traffic.
    pub fn flush(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
    ) -> Result<(), ShefError> {
        let indices: Vec<u32> = self.lru.iter().copied().collect();
        for idx in indices {
            self.writeback_line(shell, dram, ledger, idx, AccessMode::Streaming)?;
        }
        self.lines.clear();
        self.lru.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::config::{EngineSetConfig, MemRange};
    use shef_fpga::clock::Cycles;

    fn setup(
        chunk: usize,
        buffer: usize,
        counters: bool,
        zero_fill: bool,
    ) -> (EngineSet, Shell, Dram, CostLedger, DataEncryptionKey) {
        let region = RegionConfig {
            name: "test".into(),
            range: MemRange::new(0x1000, 8192),
            engine_set: EngineSetConfig {
                chunk_size: chunk,
                buffer_bytes: buffer,
                counters,
                zero_fill_writes: zero_fill,
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([3u8; 32]);
        let es = EngineSet::new(region, 0, 0x10_0000, 0x20_0000, &dek);
        (es, Shell::new(), Dram::new(1 << 22), CostLedger::new(), dek)
    }

    /// Engine set whose region uses the Bonsai-Merkle-Tree defence.
    fn setup_merkle(
        chunk: usize,
        buffer: usize,
        node_cache_bytes: usize,
    ) -> (EngineSet, Shell, Dram, CostLedger, DataEncryptionKey) {
        let region = RegionConfig {
            name: "test".into(),
            range: MemRange::new(0x1000, 8192),
            engine_set: EngineSetConfig {
                chunk_size: chunk,
                buffer_bytes: buffer,
                merkle: Some(crate::shield::merkle::MerkleConfig {
                    arity: 8,
                    node_cache_bytes,
                }),
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([3u8; 32]);
        let es = EngineSet::new(region, 0, 0x10_0000, 0x20_0000, &dek);
        (es, Shell::new(), Dram::new(1 << 22), CostLedger::new(), dek)
    }

    /// Provisions plaintext into DRAM the way the Data Owner would.
    fn provision(es: &EngineSet, dram: &mut Dram, data: &[u8]) {
        let chunk = es.chunk_size();
        for (i, pt) in data.chunks(chunk).enumerate() {
            let (ct, tag) = seal_chunk(&es.key, es.nonce, &es.region.name, i as u32, 0, pt);
            dram.tamper_write(es.chunk_addr(i as u32), &ct);
            dram.tamper_write(es.tag_addr(i as u32), &tag);
        }
    }

    #[test]
    fn read_provisioned_data() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, false, false);
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        provision(&es, &mut dram, &data);
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                8192,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, data);
        assert_eq!(es.stats().misses, 16);
    }

    #[test]
    fn unaligned_reads() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, false, false);
        let data: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 256) as u8).collect();
        provision(&es, &mut dram, &data);
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 300,
                700,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, &data[300..1000]);
    }

    #[test]
    fn write_then_read_back_through_dram() {
        let (mut es, mut shell, mut dram, mut ledger, dek) = setup(512, 1024, false, true);
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 199) as u8).collect();
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // A brand-new engine set (fresh cache) must read the same bytes.
        let region = es.region().clone();
        let mut es2 = EngineSet::new(region, 0, 0x10_0000, 0x20_0000, &dek);
        let got = es2
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                2048,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, payload);
        // Ciphertext in DRAM differs from plaintext.
        assert_ne!(dram.tamper_read(0x1000, 2048), payload);
    }

    #[test]
    fn buffer_hits_avoid_dram() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 2048, false, false);
        let data = vec![0x5au8; 8192];
        provision(&es, &mut dram, &data);
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        let before = dram.stats().bytes_read;
        // Re-read the same chunk: served from the buffer.
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 128,
                256,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(dram.stats().bytes_read, before);
        assert_eq!(es.stats().hits, 1);
    }

    #[test]
    fn lru_eviction_works() {
        // Buffer holds 2 lines; touching 3 chunks evicts the oldest.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, false);
        let data = vec![1u8; 8192];
        provision(&es, &mut dram, &data);
        for i in 0..3u64 {
            let _ = es
                .read(
                    &mut shell,
                    &mut dram,
                    &mut ledger,
                    0x1000 + i * 512,
                    512,
                    AccessMode::Streaming,
                )
                .unwrap();
        }
        // Chunk 0 was evicted: re-reading misses again.
        let misses = es.stats().misses;
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(es.stats().misses, misses + 1);
    }

    #[test]
    fn spoofed_dram_detected() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, false);
        provision(&es, &mut dram, &vec![7u8; 8192]);
        // Adversary flips a ciphertext bit.
        let mut byte = dram.tamper_read(0x1100, 1);
        byte[0] ^= 0x80;
        dram.tamper_write(0x1100, &byte);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
        assert_eq!(es.stats().integrity_failures, 1);
    }

    #[test]
    fn spliced_chunks_detected() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, false);
        provision(&es, &mut dram, &vec![9u8; 8192]);
        // Copy chunk 0's ciphertext+tag over chunk 1's.
        let c0 = dram.tamper_read(0x1000, 512);
        let t0 = dram.tamper_read(0x10_0000, 16);
        dram.tamper_write(0x1000 + 512, &c0);
        dram.tamper_write(0x10_0000 + 16, &t0);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000 + 512,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn replay_detected_with_counters() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, true, false);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        // Snapshot epoch-0 ciphertext+tag of chunk 0.
        let old_ct = dram.tamper_read(0x1000, 512);
        let old_tag = dram.tamper_read(0x10_0000, 16);
        // Legitimate write bumps the on-chip counter to 1.
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[2u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Fresh data verifies.
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, vec![2u8; 512]);
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Adversary replays the old snapshot: must be detected.
        dram.tamper_write(0x1000, &old_ct);
        dram.tamper_write(0x10_0000, &old_tag);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn replay_not_detected_without_counters() {
        // Documents the paper's point: read-write regions need counters.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, false, false);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        let old_ct = dram.tamper_read(0x1000, 512);
        let old_tag = dram.tamper_read(0x10_0000, 16);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[2u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        dram.tamper_write(0x1000, &old_ct);
        dram.tamper_write(0x10_0000, &old_tag);
        // The stale data verifies — replay goes unnoticed.
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, vec![1u8; 512]);
    }

    #[test]
    fn merkle_write_read_round_trip() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup_merkle(512, 1024, 0);
        let payload: Vec<u8> = (0..2048u32).map(|i| (i % 197) as u8).collect();
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &payload,
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                2048,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, payload);
        let ms = es.merkle_stats().expect("merkle enabled");
        assert!(ms.node_writes > 0, "bumps must rewrite tree nodes");
    }

    #[test]
    fn merkle_detects_replay() {
        // Same scenario as `replay_detected_with_counters`, but the
        // counters live in DRAM under the tree.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup_merkle(512, 512, 0);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        let old_ct = dram.tamper_read(0x1000, 512);
        let old_tag = dram.tamper_read(0x10_0000, 16);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[2u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        dram.tamper_write(0x1000, &old_ct);
        dram.tamper_write(0x10_0000, &old_tag);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
    }

    #[test]
    fn merkle_detects_tree_rollback() {
        // The stronger attack: roll back data, tag, AND the DRAM-resident
        // counter tree together. Only the on-chip root defeats this.
        let (mut es, mut shell, mut dram, mut ledger, _) = setup_merkle(512, 512, 0);
        provision(&es, &mut dram, &vec![1u8; 8192]);
        // Force tree initialization, then snapshot everything.
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let snap_data = dram.tamper_read(0x1000, 512);
        let snap_tag = dram.tamper_read(0x10_0000, 16);
        let snap_tree = dram.tamper_read(0x20_0000, 4096);
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[9u8; 512],
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        dram.tamper_write(0x1000, &snap_data);
        dram.tamper_write(0x10_0000, &snap_tag);
        dram.tamper_write(0x20_0000, &snap_tree);
        let err = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap_err();
        assert!(matches!(err, ShefError::IntegrityViolation(_)));
        assert!(es.stats().integrity_failures >= 1);
    }

    #[test]
    fn merkle_costs_exceed_onchip_counters() {
        // The paper's argument (§5.2.2): tree-node DRAM traffic makes the
        // BMT strictly more expensive than on-chip counters.
        let run = |mut es: EngineSet, mut shell: Shell, mut dram: Dram| {
            let mut ledger = CostLedger::new();
            for round in 0..4u8 {
                for i in 0..16u64 {
                    es.write(
                        &mut shell,
                        &mut dram,
                        &mut ledger,
                        0x1000 + i * 512,
                        &[round; 512],
                        AccessMode::Streaming,
                    )
                    .unwrap();
                }
                es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
            }
            ledger.lane(es.lane())
        };
        let (es_c, shell_c, dram_c, _, _) = setup(512, 512, true, false);
        let (es_m, shell_m, dram_m, _, _) = setup_merkle(512, 512, 0);
        let counters_cost = run(es_c, shell_c, dram_c);
        let merkle_cost = run(es_m, shell_m, dram_m);
        assert!(
            merkle_cost > counters_cost,
            "BMT {merkle_cost:?} must cost more than on-chip counters {counters_cost:?}"
        );
    }

    #[test]
    fn zero_fill_skips_dram_reads() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 1024, false, true);
        // Partial write to an unprovisioned chunk with zero_fill: no read.
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0x1000,
            &[9u8; 100],
            AccessMode::Streaming,
        )
        .unwrap();
        assert_eq!(dram.stats().bytes_read, 0);
        assert_eq!(es.stats().zero_fills, 1);
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Readback sees the write plus zeros.
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(&got[..100], &[9u8; 100]);
        assert_eq!(&got[100..], &vec![0u8; 412][..]);
    }

    #[test]
    fn blocking_mode_charges_serial_cycles() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(4096, 4096, false, false);
        provision(&es, &mut dram, &vec![3u8; 8192]);
        let serial_before = ledger.serial();
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                4096,
                AccessMode::Blocking,
            )
            .unwrap();
        assert!(
            ledger.serial() > serial_before,
            "blocking access must stall"
        );
    }

    #[test]
    fn streaming_mode_charges_lane_cycles() {
        let (mut es, mut shell, mut dram, mut ledger, _) = setup(512, 512, false, false);
        provision(&es, &mut dram, &vec![3u8; 8192]);
        let _ = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0x1000,
                512,
                AccessMode::Streaming,
            )
            .unwrap();
        assert!(ledger.lane(es.lane()) > Cycles::ZERO);
    }

    #[test]
    fn partial_tail_chunk() {
        // Region of 8192 with 4096-byte chunks has exactly 2 chunks; make
        // a region with a 1000-byte tail instead.
        let region = RegionConfig {
            name: "tail".into(),
            range: MemRange::new(0, 4096 + 1000),
            engine_set: EngineSetConfig {
                chunk_size: 4096,
                zero_fill_writes: true,
                ..EngineSetConfig::default()
            },
        };
        let dek = DataEncryptionKey::from_bytes([4u8; 32]);
        let mut es = EngineSet::new(region, 0, 0x20_0000, 0x30_0000, &dek);
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 22);
        let mut ledger = CostLedger::new();
        let data: Vec<u8> = (0..5096u32).map(|i| (i % 97) as u8).collect();
        es.write(
            &mut shell,
            &mut dram,
            &mut ledger,
            0,
            &data,
            AccessMode::Streaming,
        )
        .unwrap();
        es.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let got = es
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                5096,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, data);
    }
}
