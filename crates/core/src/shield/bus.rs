//! The accelerator-facing bus abstraction.
//!
//! Accelerator models are written once against [`MemoryBus`] and run in
//! two bindings:
//!
//! * [`ShieldedBus`] — traffic flows through the Shield's engine sets
//!   (the secured configuration being evaluated);
//! * [`PlainBus`] — traffic goes straight through the Shell to DRAM (the
//!   paper's insecure baseline, the "1×" of every normalized figure).
//!
//! Both charge the same DMA/DRAM/compute costs, so the measured delta is
//! exactly the Shield overhead — mirroring the paper's methodology of
//! comparing `apps/<x>` against `apps/<x>_shield` (Appendix A.6).

use shef_fpga::clock::{CostLedger, Cycles};
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;

use super::engine::AccessMode;
use super::pool::WorkerPool;
use super::timing::{PORT_READ_LANE, PORT_WRITE_LANE, SHELL_PORT_BYTES_PER_CYCLE};
use super::Shield;
use crate::ShefError;

/// Device memory + registers + compute accounting, as seen by an
/// accelerator kernel.
pub trait MemoryBus {
    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Implementations fail on unmapped addresses or integrity
    /// violations.
    fn read(&mut self, addr: u64, len: usize, mode: AccessMode) -> Result<Vec<u8>, ShefError>;

    /// Writes `data` at `addr`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MemoryBus::read`].
    fn write(&mut self, addr: u64, data: &[u8], mode: AccessMode) -> Result<(), ShefError>;

    /// Drains any buffered state to memory (end of kernel).
    ///
    /// # Errors
    ///
    /// Propagates write-back failures.
    fn flush(&mut self) -> Result<(), ShefError>;

    /// Charges `cycles` of accelerator datapath time.
    fn compute(&mut self, cycles: u64);

    /// Reads a plaintext register (accelerator side).
    fn reg_read(&mut self, index: usize) -> u64;

    /// Writes a plaintext register (accelerator side).
    fn reg_write(&mut self, index: usize, value: u64);
}

/// Lane name used for accelerator compute cycles.
pub const ACCEL_LANE: &str = "accel";

/// The shielded binding.
pub struct ShieldedBus<'a> {
    /// The Shield instance in the PR region.
    pub shield: &'a mut Shield,
    /// The CSP Shell.
    pub shell: &'a mut Shell,
    /// Device DRAM.
    pub dram: &'a mut Dram,
    /// Cost accounting for this kernel invocation.
    pub ledger: &'a mut CostLedger,
}

impl MemoryBus for ShieldedBus<'_> {
    fn read(&mut self, addr: u64, len: usize, mode: AccessMode) -> Result<Vec<u8>, ShefError> {
        self.shield
            .read(self.shell, self.dram, self.ledger, addr, len, mode)
    }

    fn write(&mut self, addr: u64, data: &[u8], mode: AccessMode) -> Result<(), ShefError> {
        self.shield
            .write(self.shell, self.dram, self.ledger, addr, data, mode)
    }

    fn flush(&mut self) -> Result<(), ShefError> {
        self.shield.flush(self.shell, self.dram, self.ledger)
    }

    fn compute(&mut self, cycles: u64) {
        self.ledger.add_busy(ACCEL_LANE, Cycles(cycles));
    }

    fn reg_read(&mut self, index: usize) -> u64 {
        self.shield.registers().accel_read(index)
    }

    fn reg_write(&mut self, index: usize, value: u64) {
        self.shield.registers().accel_write(index, value);
    }
}

/// The shielded binding over the parallel multi-lane datapath: every
/// burst is batched and its chunk crypto fanned across the pool's
/// lanes. Bit-identical to [`ShieldedBus`] on the data plane; only the
/// cost model sees the lane fan-out.
pub struct ParallelShieldedBus<'a> {
    /// The Shield instance in the PR region.
    pub shield: &'a mut Shield,
    /// The CSP Shell.
    pub shell: &'a mut Shell,
    /// Device DRAM.
    pub dram: &'a mut Dram,
    /// Cost accounting for this kernel invocation.
    pub ledger: &'a mut CostLedger,
    /// The worker lanes (replicated engine groups).
    pub pool: &'a WorkerPool,
}

impl MemoryBus for ParallelShieldedBus<'_> {
    fn read(&mut self, addr: u64, len: usize, mode: AccessMode) -> Result<Vec<u8>, ShefError> {
        self.shield.read_parallel(
            self.shell,
            self.dram,
            self.ledger,
            addr,
            len,
            mode,
            self.pool,
        )
    }

    fn write(&mut self, addr: u64, data: &[u8], mode: AccessMode) -> Result<(), ShefError> {
        self.shield.write_parallel(
            self.shell,
            self.dram,
            self.ledger,
            addr,
            data,
            mode,
            self.pool,
        )
    }

    fn flush(&mut self) -> Result<(), ShefError> {
        self.shield
            .flush_parallel(self.shell, self.dram, self.ledger, self.pool)
    }

    fn compute(&mut self, cycles: u64) {
        self.ledger.add_busy(ACCEL_LANE, Cycles(cycles));
    }

    fn reg_read(&mut self, index: usize) -> u64 {
        self.shield.registers().accel_read(index)
    }

    fn reg_write(&mut self, index: usize, value: u64) {
        self.shield.registers().accel_write(index, value);
    }
}

/// The insecure baseline binding: no encryption, no authentication.
pub struct PlainBus<'a> {
    /// The CSP Shell.
    pub shell: &'a mut Shell,
    /// Device DRAM.
    pub dram: &'a mut Dram,
    /// Cost accounting for this kernel invocation.
    pub ledger: &'a mut CostLedger,
    /// Plaintext register file.
    pub regs: &'a mut [u64],
}

impl MemoryBus for PlainBus<'_> {
    fn read(&mut self, addr: u64, len: usize, _mode: AccessMode) -> Result<Vec<u8>, ShefError> {
        self.ledger.add_busy(
            PORT_READ_LANE,
            Cycles((len as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        Ok(self.shell.mem_read(self.dram, addr, len)?)
    }

    fn write(&mut self, addr: u64, data: &[u8], _mode: AccessMode) -> Result<(), ShefError> {
        self.ledger.add_busy(
            PORT_WRITE_LANE,
            Cycles((data.len() as u64).div_ceil(SHELL_PORT_BYTES_PER_CYCLE)),
        );
        Ok(self.shell.mem_write(self.dram, addr, data)?)
    }

    fn flush(&mut self) -> Result<(), ShefError> {
        Ok(())
    }

    fn compute(&mut self, cycles: u64) {
        self.ledger.add_busy(ACCEL_LANE, Cycles(cycles));
    }

    fn reg_read(&mut self, index: usize) -> u64 {
        self.regs.get(index).copied().unwrap_or(0)
    }

    fn reg_write(&mut self, index: usize, value: u64) {
        if let Some(slot) = self.regs.get_mut(index) {
            *slot = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::config::{EngineSetConfig, MemRange, ShieldConfig};
    use crate::shield::keys::DataEncryptionKey;
    use shef_crypto::ecies::EciesKeyPair;

    #[test]
    fn plain_bus_round_trip() {
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 20);
        let mut ledger = CostLedger::new();
        let mut regs = vec![0u64; 4];
        let mut bus = PlainBus {
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
            regs: &mut regs,
        };
        bus.write(0x100, b"plain", AccessMode::Streaming).unwrap();
        assert_eq!(bus.read(0x100, 5, AccessMode::Streaming).unwrap(), b"plain");
        bus.reg_write(2, 77);
        assert_eq!(bus.reg_read(2), 77);
        bus.compute(500);
        bus.flush().unwrap();
        assert_eq!(ledger.lane(ACCEL_LANE), Cycles(500));
        // Plain bus stores plaintext in DRAM — the vulnerability the
        // Shield exists to close.
        assert_eq!(dram.tamper_read(0x100, 5), b"plain");
    }

    #[test]
    fn shielded_bus_round_trip() {
        let config = ShieldConfig::builder()
            .region(
                "scratch",
                MemRange::new(0, 8192),
                EngineSetConfig {
                    zero_fill_writes: true,
                    counters: true,
                    buffer_bytes: 1024,
                    ..EngineSetConfig::default()
                },
            )
            .build()
            .unwrap();
        let mut shield = Shield::new(config, EciesKeyPair::from_seed(b"bus")).unwrap();
        let dek = DataEncryptionKey::from_bytes([5u8; 32]);
        let lk = dek.to_load_key(&shield.public_key());
        shield.provision_load_key(&lk).unwrap();

        let mut shell = Shell::new();
        let mut dram = Dram::f1_default();
        let mut ledger = CostLedger::new();
        let mut bus = ShieldedBus {
            shield: &mut shield,
            shell: &mut shell,
            dram: &mut dram,
            ledger: &mut ledger,
        };
        bus.write(0, b"sensitive!", AccessMode::Streaming).unwrap();
        bus.flush().unwrap();
        assert_eq!(
            bus.read(0, 10, AccessMode::Streaming).unwrap(),
            b"sensitive!"
        );
        bus.compute(10);
        // DRAM never sees the plaintext.
        assert_ne!(dram.tamper_read(0, 10), b"sensitive!");
    }
}
