//! The ShEF Shield (§5): configurable isolated execution and secure I/O.
//!
//! The [`Shield`] wraps an accelerator with two protected faces:
//!
//! * a **memory interface** — a burst decoder routes every accelerator
//!   AXI4 burst to the engine set of its region, which transparently
//!   decrypts/verifies on reads and encrypts/MACs on writes;
//! * a **register interface** — authenticated encryption over the
//!   AXI4-Lite command path, optionally with address hiding.
//!
//! Accelerators program against the [`bus::MemoryBus`] abstraction,
//! which has a shielded implementation and a pass-through baseline, so
//! the benchmark harness measures both sides of every figure.

pub mod area;
pub mod bus;
pub mod chunk;
pub mod client;
pub mod config;
pub mod engine;
pub mod keys;
pub mod merkle;
pub mod pool;
pub mod regif;
pub mod service;
pub mod shard;
pub mod stream;
pub mod timing;

use shef_crypto::authenc::Sealed;
use shef_crypto::ecies::{EciesKeyPair, EciesPublicKey};
use shef_fpga::clock::CostLedger;
use shef_fpga::dram::Dram;
use shef_fpga::shell::Shell;
use shef_telemetry::Telemetry;

use crate::ShefError;
pub use config::{EngineSetConfig, MemRange, RegionConfig, RegisterInterfaceConfig, ShieldConfig};
pub use engine::{AccessMode, EngineSet, EngineSetStats};
pub use keys::{DataEncryptionKey, KeyStorage, LoadKey};
pub use merkle::{MerkleConfig, MerkleStats, MerkleTree};
pub use pool::{PoolStats, TryRunOutcome, WorkerPool};
pub use regif::RegisterInterface;
pub use service::{Completion, RequestId, ServiceConfig, ServiceRequest, ShieldService, TenantId};
pub use shard::ShieldShard;
pub use stream::{StreamDirection, StreamEndpoint, StreamFrame};
pub use timing::BatchCost;

/// The Shield runtime instantiated in the PR region next to the
/// accelerator.
pub struct Shield {
    config: ShieldConfig,
    keys: KeyStorage,
    engine_sets: Vec<EngineSet>,
    regif: RegisterInterface,
    telemetry: Telemetry,
}

impl core::fmt::Debug for Shield {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Shield")
            .field("regions", &self.config.regions.len())
            .field("provisioned", &self.is_provisioned())
            .finish_non_exhaustive()
    }
}

impl Shield {
    /// Instantiates a Shield from its compiled configuration and the IP
    /// Vendor's embedded private Shield Encryption Key.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: ShieldConfig, shield_keypair: EciesKeyPair) -> Result<Self, ShefError> {
        config.validate()?;
        let regif = RegisterInterface::new(config.register_interface.clone());
        Ok(Shield {
            config,
            keys: KeyStorage::new(shield_keypair),
            engine_sets: Vec::new(),
            regif,
            telemetry: Telemetry::new(),
        })
    }

    /// The Shield's telemetry registry. Every engine set built by
    /// [`Shield::provision_load_key`] reports its `shield.engine.*`
    /// instruments here; snapshot it with
    /// [`shef_telemetry::Telemetry::report`] for a run report.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Replaces the Shield's registry with a shared one (e.g. the
    /// harness's per-run registry, also attached to the DRAM model and
    /// worker pool) and rebinds every live engine set onto it.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        for set in &mut self.engine_sets {
            set.attach_telemetry(telemetry);
        }
    }

    /// The compiled configuration.
    #[must_use]
    pub fn config(&self) -> &ShieldConfig {
        &self.config
    }

    /// The public half of the embedded Shield Encryption Key (what the
    /// IP Vendor publishes to Data Owners).
    #[must_use]
    pub fn public_key(&self) -> EciesPublicKey {
        self.keys.shield_public()
    }

    /// True once a Load Key has been accepted.
    #[must_use]
    pub fn is_provisioned(&self) -> bool {
        self.keys.is_provisioned()
    }

    /// Accepts a Load Key from the host, unlocking the data path
    /// (Fig. 3 step 8 → runtime).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Crypto`] if the Load Key targets another
    /// Shield.
    pub fn provision_load_key(&mut self, load_key: &LoadKey) -> Result<(), ShefError> {
        self.keys.provision(load_key)?;
        let dek = self.keys.data_key()?.clone();
        self.engine_sets = self
            .config
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut set = EngineSet::new(
                    r.clone(),
                    i,
                    self.config.tag_base(i),
                    self.config.merkle_base(i),
                    &dek,
                );
                set.attach_telemetry(&self.telemetry);
                set
            })
            .collect();
        self.regif.set_key(dek.register_key());
        Ok(())
    }

    /// Ends the session: erases ephemeral keys and buffer contents.
    pub fn zeroize(&mut self) {
        self.keys.zeroize();
        self.engine_sets.clear();
        self.regif.zeroize();
    }

    fn set_for(&mut self, addr: u64) -> Result<&mut EngineSet, ShefError> {
        let idx = self
            .config
            .region_for(addr)
            .ok_or(ShefError::UnmappedAddress(addr))?;
        if self.engine_sets.is_empty() {
            return Err(ShefError::KeyNotProvisioned(
                "shield data path locked until a load key is provisioned".into(),
            ));
        }
        Ok(&mut self.engine_sets[idx])
    }

    /// Accelerator-side memory read through the burst decoder. Spans may
    /// cross region boundaries; each sub-span is served by its region's
    /// engine set.
    ///
    /// # Errors
    ///
    /// * [`ShefError::UnmappedAddress`] if part of the span is outside
    ///   every region.
    /// * [`ShefError::IntegrityViolation`] on authentication failure.
    pub fn read(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
        mode: AccessMode,
    ) -> Result<Vec<u8>, ShefError> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let set = self.set_for(cur)?;
            let span_end = set.region().range.end().min(end);
            let take = (span_end - cur) as usize;
            out.extend(set.read(shell, dram, ledger, cur, take, mode)?);
            cur = span_end;
        }
        Ok(out)
    }

    /// Accelerator-side memory write through the burst decoder.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shield::read`].
    pub fn write(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
        mode: AccessMode,
    ) -> Result<(), ShefError> {
        let mut cur = addr;
        let end = addr + data.len() as u64;
        let mut offset = 0usize;
        while cur < end {
            let set = self.set_for(cur)?;
            let span_end = set.region().range.end().min(end);
            let take = (span_end - cur) as usize;
            set.write(shell, dram, ledger, cur, &data[offset..offset + take], mode)?;
            cur = span_end;
            offset += take;
        }
        Ok(())
    }

    /// Flushes all engine-set buffers (end of kernel).
    ///
    /// # Errors
    ///
    /// Propagates write-back errors.
    pub fn flush(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
    ) -> Result<(), ShefError> {
        for set in &mut self.engine_sets {
            set.flush(shell, dram, ledger)?;
        }
        Ok(())
    }

    /// [`Shield::read`] over the parallel datapath: each covered engine
    /// set fans its chunk crypto across `pool`'s lanes. Bit-identical to
    /// the serial path on success.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shield::read`].
    #[allow(clippy::too_many_arguments)]
    pub fn read_parallel(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        len: usize,
        mode: AccessMode,
        pool: &WorkerPool,
    ) -> Result<Vec<u8>, ShefError> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let set = self.set_for(cur)?;
            let span_end = set.region().range.end().min(end);
            let take = (span_end - cur) as usize;
            out.extend(set.read_chunks(shell, dram, ledger, cur, take, mode, pool)?);
            cur = span_end;
        }
        Ok(out)
    }

    /// [`Shield::write`] over the parallel datapath.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Shield::read`].
    #[allow(clippy::too_many_arguments)]
    pub fn write_parallel(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        addr: u64,
        data: &[u8],
        mode: AccessMode,
        pool: &WorkerPool,
    ) -> Result<(), ShefError> {
        let mut cur = addr;
        let end = addr + data.len() as u64;
        let mut offset = 0usize;
        while cur < end {
            let set = self.set_for(cur)?;
            let span_end = set.region().range.end().min(end);
            let take = (span_end - cur) as usize;
            set.write_chunks(
                shell,
                dram,
                ledger,
                cur,
                &data[offset..offset + take],
                mode,
                pool,
            )?;
            cur = span_end;
            offset += take;
        }
        Ok(())
    }

    /// [`Shield::flush`] over the parallel datapath: each engine set's
    /// dirty-line seals are fanned across `pool`'s lanes.
    ///
    /// # Errors
    ///
    /// Propagates write-back errors.
    pub fn flush_parallel(
        &mut self,
        shell: &mut Shell,
        dram: &mut Dram,
        ledger: &mut CostLedger,
        pool: &WorkerPool,
    ) -> Result<(), ShefError> {
        for set in &mut self.engine_sets {
            set.flush_parallel(shell, dram, ledger, pool)?;
        }
        Ok(())
    }

    /// The register interface (host and accelerator faces).
    pub fn registers(&mut self) -> &mut RegisterInterface {
        &mut self.regif
    }

    /// Host-side sealed register write (proxied by the host program).
    ///
    /// # Errors
    ///
    /// See [`RegisterInterface::host_write`].
    pub fn host_reg_write(&mut self, index: usize, sealed: &Sealed) -> Result<(), ShefError> {
        self.regif.host_write(index, sealed)
    }

    /// Host-side sealed register read.
    ///
    /// # Errors
    ///
    /// See [`RegisterInterface::host_read`].
    pub fn host_reg_read(&mut self, index: usize) -> Result<Sealed, ShefError> {
        self.regif.host_read(index)
    }

    /// Per-engine-set runtime statistics, in region order.
    #[must_use]
    pub fn engine_stats(&self) -> Vec<(String, EngineSetStats)> {
        self.engine_sets
            .iter()
            .map(|s| (s.region().name.clone(), s.stats()))
            .collect()
    }

    /// The Shield's area, per the Table 1 component model.
    #[must_use]
    pub fn area(&self) -> area::Resources {
        area::shield_area(&self.config)
    }

    /// Names of regions whose engine sets are poisoned (fail-stop
    /// containment after a detected integrity violation).
    #[must_use]
    pub fn poisoned_regions(&self) -> Vec<String> {
        self.engine_sets
            .iter()
            .filter(|s| s.poisoned())
            .map(|s| s.region().name.clone())
            .collect()
    }

    /// Clears containment state on every engine set, dropping all
    /// buffered lines (see [`engine::EngineSet::clear_poison`]).
    pub fn clear_poison(&mut self) {
        for set in &mut self.engine_sets {
            set.clear_poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shef_fpga::clock::CostLedger;

    fn shield() -> (Shield, Shell, Dram, CostLedger, DataEncryptionKey) {
        let config = ShieldConfig::builder()
            .region(
                "in",
                MemRange::new(0, 4096),
                EngineSetConfig {
                    buffer_bytes: 1024,
                    ..EngineSetConfig::default()
                },
            )
            .region(
                "out",
                MemRange::new(1 << 20, 4096),
                EngineSetConfig {
                    zero_fill_writes: true,
                    ..EngineSetConfig::default()
                },
            )
            .build()
            .unwrap();
        let kp = EciesKeyPair::from_seed(b"shield-test");
        let mut shield = Shield::new(config, kp).unwrap();
        let dek = DataEncryptionKey::from_bytes([0x44u8; 32]);
        let lk = dek.to_load_key(&shield.public_key());
        shield.provision_load_key(&lk).unwrap();
        (
            shield,
            Shell::new(),
            Dram::f1_default(),
            CostLedger::new(),
            dek,
        )
    }

    #[test]
    fn unprovisioned_shield_locks_data_path() {
        let config = ShieldConfig::builder()
            .region("r", MemRange::new(0, 4096), EngineSetConfig::default())
            .build()
            .unwrap();
        let mut s = Shield::new(config, EciesKeyPair::from_seed(b"x")).unwrap();
        let mut shell = Shell::new();
        let mut dram = Dram::new(1 << 30);
        let mut ledger = CostLedger::new();
        assert!(matches!(
            s.read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                64,
                AccessMode::Streaming
            ),
            Err(ShefError::KeyNotProvisioned(_))
        ));
    }

    #[test]
    fn end_to_end_data_flow() {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shield();
        // Data Owner provisions encrypted input.
        let input: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(&dek, &region, &input, 0);
        dram.tamper_write(0, &enc.ciphertext); // host DMA (content identical)
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);
        // Accelerator reads input, writes doubled bytes to output.
        let data = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                4096,
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(data, input);
        let doubled: Vec<u8> = data.iter().map(|b| b.wrapping_mul(2)).collect();
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                1 << 20,
                &doubled,
                AccessMode::Streaming,
            )
            .unwrap();
        shield.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        // Data Owner reads back and decrypts output (epoch 0: write-once).
        let out_region = shield.config().regions[1].clone();
        let ct = dram.tamper_read(1 << 20, 4096);
        let tags = dram.tamper_read(
            shield.config().tag_base(1),
            client::tag_bytes_for(4096, 512),
        );
        let out = client::decrypt_region(&dek, &out_region, &ct, &tags, &client::uniform_epochs(0))
            .unwrap();
        assert_eq!(out, doubled);
    }

    #[test]
    fn unmapped_access_rejected() {
        let (mut shield, mut shell, mut dram, mut ledger, _) = shield();
        assert!(matches!(
            shield.read(
                &mut shell,
                &mut dram,
                &mut ledger,
                1 << 30,
                64,
                AccessMode::Streaming
            ),
            Err(ShefError::UnmappedAddress(_))
        ));
    }

    #[test]
    fn wrong_load_key_rejected() {
        let config = ShieldConfig::builder()
            .region("r", MemRange::new(0, 4096), EngineSetConfig::default())
            .build()
            .unwrap();
        let mut s = Shield::new(config, EciesKeyPair::from_seed(b"right")).unwrap();
        let other = EciesKeyPair::from_seed(b"wrong");
        let dek = DataEncryptionKey::from_bytes([1u8; 32]);
        let lk = dek.to_load_key(&other.public_key());
        assert!(s.provision_load_key(&lk).is_err());
        assert!(!s.is_provisioned());
    }

    #[test]
    fn zeroize_locks_everything_again() {
        let (mut shield, mut shell, mut dram, mut ledger, _) = shield();
        shield.zeroize();
        assert!(!shield.is_provisioned());
        assert!(shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                64,
                AccessMode::Streaming
            )
            .is_err());
    }

    #[test]
    fn shield_telemetry_aggregates_across_regions() {
        let (mut shield, mut shell, mut dram, mut ledger, dek) = shield();
        let input: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let region = shield.config().regions[0].clone();
        let enc = client::encrypt_region(&dek, &region, &input, 0);
        dram.tamper_write(0, &enc.ciphertext);
        dram.tamper_write(shield.config().tag_base(0), &enc.tags);
        let data = shield
            .read(
                &mut shell,
                &mut dram,
                &mut ledger,
                0,
                4096,
                AccessMode::Streaming,
            )
            .unwrap();
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                1 << 20,
                &data,
                AccessMode::Streaming,
            )
            .unwrap();
        shield.flush(&mut shell, &mut dram, &mut ledger).unwrap();
        let report = shield.telemetry().report();
        // Both regions report into the one registry: input-region reads
        // and output-region writes land on the same counters.
        assert_eq!(report.counters["shield.engine.bytes_read"], 4096);
        assert_eq!(report.counters["shield.engine.bytes_written"], 4096);
        assert!(report.counters["shield.engine.misses"] >= 8);
        assert!(report.counters["shield.engine.writebacks"] >= 8);
    }

    #[test]
    fn attach_telemetry_rebinds_live_engine_sets() {
        let (mut shield, mut shell, mut dram, mut ledger, _) = shield();
        let shared = Telemetry::new();
        shield.attach_telemetry(&shared);
        assert!(shield.telemetry().same_registry(&shared));
        shield
            .write(
                &mut shell,
                &mut dram,
                &mut ledger,
                1 << 20,
                &[9u8; 512],
                AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(shared.report().counters["shield.engine.bytes_written"], 512);
    }

    #[test]
    fn area_reflects_configuration() {
        let (shield, ..) = shield();
        let r = shield.area();
        assert!(r.lut > 0);
        // Two engine sets with default AES-16x + HMAC.
        let expected_lut = area::component::CONTROLLER.lut
            + area::component::REG_INTERFACE.lut
            + area::component::AES_16X.lut
            + area::component::HMAC.lut
            + 2 * (area::component::ENGINE_SET_BASE.lut
                + area::component::AES_16X.lut
                + area::component::HMAC.lut);
        assert_eq!(r.lut, expected_lut);
    }
}
