//! The on-DRAM chunk format shared by the Shield and the Data Owner's
//! client-side encryption.
//!
//! Every `C_mem`-byte chunk of a protected region is stored as:
//!
//! * **ciphertext** at its natural address (AES-CTR, IV derived from the
//!   region nonce, chunk index and write epoch);
//! * a **16-byte MAC tag** in the region's tag-arena slot, computed in
//!   encrypt-then-MAC mode over `(region, index, epoch) || IV ||
//!   ciphertext`.
//!
//! Binding the index defeats *splicing* (copying ciphertext between
//! addresses), binding the region defeats cross-region splices, and
//! binding the epoch (backed by on-chip counters) defeats *replay*
//! (§5.2.1/§5.2.2).

use shef_crypto::authenc::{AuthEncKey, Sealed, TAG_LEN};
use shef_crypto::ctr::ChunkIv;

use crate::wire::Writer;
use crate::ShefError;

/// Bytes of MAC tag stored per chunk.
pub const CHUNK_TAG_LEN: usize = TAG_LEN;

/// Associated data binding a chunk to its identity and version.
#[must_use]
pub fn chunk_ad(region_name: &str, chunk_idx: u32, epoch: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str("shef.chunk.v1");
    w.put_str(region_name);
    w.put_u32(chunk_idx);
    w.put_u64(epoch);
    w.finish()
}

/// The IV for a chunk at a given write epoch.
#[must_use]
pub fn chunk_iv(region_nonce: [u8; 8], chunk_idx: u32, epoch: u64) -> ChunkIv {
    if epoch == 0 {
        ChunkIv::for_chunk(region_nonce, chunk_idx)
    } else {
        ChunkIv::for_chunk_epoch(region_nonce, chunk_idx, epoch)
    }
}

/// Encrypts and MACs one chunk; returns `(ciphertext, tag)`.
#[must_use]
pub fn seal_chunk(
    key: &AuthEncKey,
    region_nonce: [u8; 8],
    region_name: &str,
    chunk_idx: u32,
    epoch: u64,
    plaintext: &[u8],
) -> (Vec<u8>, [u8; CHUNK_TAG_LEN]) {
    let iv = chunk_iv(region_nonce, chunk_idx, epoch);
    let ad = chunk_ad(region_name, chunk_idx, epoch);
    let sealed = key.seal_with_iv(plaintext, &ad, iv);
    (sealed.ciphertext, sealed.tag)
}

/// Verifies and decrypts one chunk.
///
/// # Errors
///
/// Returns [`ShefError::IntegrityViolation`] if the tag does not match —
/// the Shield's spoof/splice/replay detection path.
pub fn open_chunk(
    key: &AuthEncKey,
    region_nonce: [u8; 8],
    region_name: &str,
    chunk_idx: u32,
    epoch: u64,
    ciphertext: &[u8],
    tag: &[u8; CHUNK_TAG_LEN],
) -> Result<Vec<u8>, ShefError> {
    let iv = chunk_iv(region_nonce, chunk_idx, epoch);
    let ad = chunk_ad(region_name, chunk_idx, epoch);
    let sealed = Sealed {
        iv: iv.0,
        ciphertext: ciphertext.to_vec(),
        tag: *tag,
    };
    key.open(&sealed, &ad).map_err(|_| {
        ShefError::IntegrityViolation(format!(
            "chunk {chunk_idx} of region '{region_name}' failed authentication at epoch {epoch}"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shef_crypto::authenc::MacAlgorithm;

    fn key() -> AuthEncKey {
        AuthEncKey::from_bytes([7u8; 32], MacAlgorithm::HmacSha256)
    }

    #[test]
    fn seal_open_round_trip() {
        let k = key();
        let (ct, tag) = seal_chunk(&k, [1; 8], "weights", 5, 0, b"chunk payload");
        let pt = open_chunk(&k, [1; 8], "weights", 5, 0, &ct, &tag).unwrap();
        assert_eq!(pt, b"chunk payload");
    }

    #[test]
    fn spoofing_detected() {
        let k = key();
        let (mut ct, tag) = seal_chunk(&k, [1; 8], "r", 0, 0, &[0xaa; 64]);
        ct[10] ^= 1;
        assert!(matches!(
            open_chunk(&k, [1; 8], "r", 0, 0, &ct, &tag),
            Err(ShefError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn splicing_detected() {
        // Chunk 3's ciphertext presented as chunk 4 must fail.
        let k = key();
        let (ct, tag) = seal_chunk(&k, [1; 8], "r", 3, 0, &[0xbb; 64]);
        assert!(open_chunk(&k, [1; 8], "r", 4, 0, &ct, &tag).is_err());
        // Cross-region splice must fail too.
        assert!(open_chunk(&k, [1; 8], "other", 3, 0, &ct, &tag).is_err());
    }

    #[test]
    fn replay_detected_via_epoch() {
        // Old-epoch ciphertext presented at a newer epoch must fail.
        let k = key();
        let (ct0, tag0) = seal_chunk(&k, [1; 8], "r", 0, 0, &[0xcc; 64]);
        assert!(open_chunk(&k, [1; 8], "r", 0, 1, &ct0, &tag0).is_err());
        // And the fresh epoch verifies.
        let (ct1, tag1) = seal_chunk(&k, [1; 8], "r", 0, 1, &[0xdd; 64]);
        assert_eq!(
            open_chunk(&k, [1; 8], "r", 0, 1, &ct1, &tag1).unwrap(),
            vec![0xdd; 64]
        );
    }

    #[test]
    fn epochs_change_keystream() {
        let k = key();
        let (ct0, _) = seal_chunk(&k, [1; 8], "r", 0, 1, &[0; 64]);
        let (ct1, _) = seal_chunk(&k, [1; 8], "r", 0, 2, &[0; 64]);
        assert_ne!(ct0, ct1);
    }

    #[test]
    fn pmac_variant_interoperates() {
        let k = AuthEncKey::from_bytes([7u8; 32], MacAlgorithm::PmacAes);
        let (ct, tag) = seal_chunk(&k, [2; 8], "w", 9, 3, b"pmac chunk");
        assert_eq!(
            open_chunk(&k, [2; 8], "w", 9, 3, &ct, &tag).unwrap(),
            b"pmac chunk"
        );
    }
}
