//! Shield configuration: the IP Vendor's knobs (§5.2.2).
//!
//! "The Shield's memory interface is designed to allow IP Vendors to
//! configure its features and performance, enabling bespoke TEEs
//! customized to each accelerator." A [`ShieldConfig`] carries:
//!
//! * a **partition map** of memory regions, each mapped to one engine set;
//! * per-engine-set **cryptographic engines** (AES count, S-box
//!   parallelism, key size; HMAC or PMAC, MAC engine count);
//! * per-region **chunk size** `C_mem`;
//! * optional **on-chip buffer** (a cache with `C_mem`-sized lines);
//! * optional **freshness counters** (the paper's lightweight alternative
//!   to Bonsai Merkle Trees);
//! * the streaming-write **zero-fill** optimization;
//! * the register-interface options, including address hiding.

use shef_crypto::aes::{AesKeySize, SBoxParallelism};
use shef_crypto::authenc::MacAlgorithm;

use super::merkle::MerkleConfig;
use crate::wire::{Reader, Writer};
use crate::ShefError;

/// A half-open address range `[start, start + len)` in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRange {
    /// First byte address.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl MemRange {
    /// Creates a range.
    #[must_use]
    pub fn new(start: u64, len: u64) -> Self {
        MemRange { start, len }
    }

    /// One past the last byte.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// True if `addr` falls inside the range.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// True if the full `[addr, addr+len)` window fits inside the range.
    #[must_use]
    pub fn contains_span(&self, addr: u64, len: usize) -> bool {
        self.contains(addr) && addr + len as u64 <= self.end()
    }

    /// True if two ranges overlap.
    #[must_use]
    pub fn overlaps(&self, other: &MemRange) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// Configuration of one engine set (§5.2.2 "each engine set includes
/// encryption and authentication engines alongside on-chip buffers and
/// counters").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSetConfig {
    /// Number of AES engines in the set.
    pub aes_engines: usize,
    /// S-box duplication per AES engine (the 4x/16x of the paper).
    pub sbox: SBoxParallelism,
    /// AES key size (128 or 256 bits), fixed at bitstream compile time.
    pub key_size: AesKeySize,
    /// MAC engine kind: HMAC (default) or PMAC.
    pub mac: MacAlgorithm,
    /// Number of MAC engines in the set.
    pub mac_engines: usize,
    /// Authenticated-encryption chunk size `C_mem` in bytes.
    pub chunk_size: usize,
    /// On-chip buffer capacity in bytes (0 disables the buffer).
    pub buffer_bytes: usize,
    /// Enable per-chunk freshness counters (replay protection).
    pub counters: bool,
    /// Zero-fill write misses instead of reading the old chunk
    /// ("if the corresponding chunk is only written to once and not
    /// read … the IP Vendor can simply zero-out the on-chip buffer").
    pub zero_fill_writes: bool,
    /// Replay protection via a DRAM-resident Bonsai Merkle Tree over
    /// counters — the CPU-TEE baseline the paper's on-chip counter
    /// scheme is measured against (§5.2.2). Mutually exclusive with
    /// [`counters`](Self::counters).
    pub merkle: Option<MerkleConfig>,
}

impl Default for EngineSetConfig {
    fn default() -> Self {
        EngineSetConfig {
            aes_engines: 1,
            sbox: SBoxParallelism::X16,
            key_size: AesKeySize::Aes128,
            mac: MacAlgorithm::HmacSha256,
            mac_engines: 1,
            chunk_size: 512,
            buffer_bytes: 0,
            counters: false,
            zero_fill_writes: false,
            merkle: None,
        }
    }
}

impl EngineSetConfig {
    /// Short human-readable description, e.g. `AES-128/16x ×4 + PMAC ×4`.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "{}/{} ×{} + {} ×{}, C={}B{}{}",
            self.key_size,
            self.sbox,
            self.aes_engines,
            self.mac,
            self.mac_engines,
            self.chunk_size,
            if self.buffer_bytes > 0 {
                format!(", buf={}KB", self.buffer_bytes / 1024)
            } else {
                String::new()
            },
            match (&self.counters, &self.merkle) {
                (true, _) => ", counters".to_owned(),
                (false, Some(m)) =>
                    format!(", BMT(arity={}, cache={}B)", m.arity, m.node_cache_bytes),
                (false, None) => String::new(),
            },
        )
    }

    fn validate(&self) -> Result<(), ShefError> {
        if self.aes_engines == 0 || self.mac_engines == 0 {
            return Err(ShefError::InvalidConfig(
                "engine set needs at least one AES and one MAC engine".into(),
            ));
        }
        if self.chunk_size == 0 {
            return Err(ShefError::InvalidConfig(
                "chunk size must be positive".into(),
            ));
        }
        if self.buffer_bytes > 0 && self.buffer_bytes < self.chunk_size {
            return Err(ShefError::InvalidConfig(
                "buffer must hold at least one chunk".into(),
            ));
        }
        if let Some(merkle) = &self.merkle {
            merkle.validate()?;
            if self.counters {
                return Err(ShefError::InvalidConfig(
                    "on-chip counters and a Merkle tree are alternative replay \
                     defences; enable at most one"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    fn serialize(&self, w: &mut Writer) {
        w.put_u32(self.aes_engines as u32);
        w.put_u32(self.sbox.factor());
        w.put_u8(match self.key_size {
            AesKeySize::Aes128 => 0,
            AesKeySize::Aes256 => 1,
        });
        w.put_u8(match self.mac {
            MacAlgorithm::HmacSha256 => 0,
            MacAlgorithm::PmacAes => 1,
            MacAlgorithm::AesGcm => 2,
        });
        w.put_u32(self.mac_engines as u32);
        w.put_u64(self.chunk_size as u64);
        w.put_u64(self.buffer_bytes as u64);
        w.put_bool(self.counters);
        w.put_bool(self.zero_fill_writes);
        w.put_bool(self.merkle.is_some());
        if let Some(merkle) = &self.merkle {
            merkle.serialize(w);
        }
    }

    fn deserialize(r: &mut Reader<'_>) -> Result<Self, ShefError> {
        let aes_engines = r.get_u32()? as usize;
        let sbox = match r.get_u32()? {
            1 => SBoxParallelism::X1,
            2 => SBoxParallelism::X2,
            4 => SBoxParallelism::X4,
            8 => SBoxParallelism::X8,
            16 => SBoxParallelism::X16,
            f => return Err(ShefError::Malformed(format!("bad sbox factor {f}"))),
        };
        let key_size = match r.get_u8()? {
            0 => AesKeySize::Aes128,
            1 => AesKeySize::Aes256,
            v => return Err(ShefError::Malformed(format!("bad key size tag {v}"))),
        };
        let mac = match r.get_u8()? {
            0 => MacAlgorithm::HmacSha256,
            1 => MacAlgorithm::PmacAes,
            2 => MacAlgorithm::AesGcm,
            v => return Err(ShefError::Malformed(format!("bad mac tag {v}"))),
        };
        let mac_engines = r.get_u32()? as usize;
        let chunk_size = r.get_u64()? as usize;
        let buffer_bytes = r.get_u64()? as usize;
        let counters = r.get_bool()?;
        let zero_fill_writes = r.get_bool()?;
        let merkle = if r.get_bool()? {
            Some(MerkleConfig::deserialize(r)?)
        } else {
            None
        };
        Ok(EngineSetConfig {
            aes_engines,
            sbox,
            key_size,
            mac,
            mac_engines,
            chunk_size,
            buffer_bytes,
            counters,
            zero_fill_writes,
            merkle,
        })
    }
}

/// A named memory region protected by one engine set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionConfig {
    /// Region name; also the key-derivation label.
    pub name: String,
    /// Address range in device memory.
    pub range: MemRange,
    /// The engine set securing this region.
    pub engine_set: EngineSetConfig,
}

/// Register-interface options (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterInterfaceConfig {
    /// Number of 64-bit registers in the Shield-provided register file.
    pub num_registers: usize,
    /// Hide register addresses by funnelling all traffic through a
    /// single common register with in-band addressing.
    pub hide_addresses: bool,
}

impl Default for RegisterInterfaceConfig {
    fn default() -> Self {
        RegisterInterfaceConfig {
            num_registers: 32,
            hide_addresses: false,
        }
    }
}

/// Base of the tag arena in device memory. Region tags live above the
/// data regions; 48 GB leaves the paper's workloads unconstrained.
pub const TAG_ARENA_BASE: u64 = 48 << 30;
/// Tag arena bytes reserved per region (16 M chunks × 16 B).
pub const TAG_ARENA_STRIDE: u64 = 256 << 20;
/// Base of the Merkle-tree arena: DRAM backing for regions that use the
/// Bonsai-Merkle-Tree replay defence instead of on-chip counters.
pub const MERKLE_ARENA_BASE: u64 = 56 << 30;
/// Merkle arena bytes reserved per region.
pub const MERKLE_ARENA_STRIDE: u64 = 256 << 20;

/// The complete Shield configuration compiled into a bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShieldConfig {
    /// Partition map: disjoint regions, each with its engine set.
    pub regions: Vec<RegionConfig>,
    /// Register interface options.
    pub register_interface: RegisterInterfaceConfig,
}

impl ShieldConfig {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> ShieldConfigBuilder {
        ShieldConfigBuilder::default()
    }

    /// Validates invariants: non-overlapping regions, sane engine sets,
    /// chunk counts within the tag arena.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] describing the violation.
    pub fn validate(&self) -> Result<(), ShefError> {
        for (i, region) in self.regions.iter().enumerate() {
            region.engine_set.validate()?;
            if region.range.len == 0 {
                return Err(ShefError::InvalidConfig(format!(
                    "region '{}' is empty",
                    region.name
                )));
            }
            if region.range.end() > TAG_ARENA_BASE {
                return Err(ShefError::InvalidConfig(format!(
                    "region '{}' overlaps the tag arena",
                    region.name
                )));
            }
            let chunks = region
                .range
                .len
                .div_ceil(region.engine_set.chunk_size as u64);
            if chunks * 16 > TAG_ARENA_STRIDE {
                return Err(ShefError::InvalidConfig(format!(
                    "region '{}' has too many chunks for its tag arena slot",
                    region.name
                )));
            }
            for other in &self.regions[i + 1..] {
                if region.range.overlaps(&other.range) {
                    return Err(ShefError::InvalidConfig(format!(
                        "regions '{}' and '{}' overlap",
                        region.name, other.name
                    )));
                }
                if region.name == other.name {
                    return Err(ShefError::InvalidConfig(format!(
                        "duplicate region name '{}'",
                        region.name
                    )));
                }
            }
        }
        if self.register_interface.num_registers == 0 {
            return Err(ShefError::InvalidConfig(
                "register file cannot be empty".into(),
            ));
        }
        Ok(())
    }

    /// Index of the region containing `addr`, if any.
    #[must_use]
    pub fn region_for(&self, addr: u64) -> Option<usize> {
        self.regions.iter().position(|r| r.range.contains(addr))
    }

    /// Device address where region `index` stores its MAC tags.
    #[must_use]
    pub fn tag_base(&self, index: usize) -> u64 {
        TAG_ARENA_BASE + index as u64 * TAG_ARENA_STRIDE
    }

    /// Device address where region `index` stores its Merkle-tree nodes
    /// (used only when the region's engine set enables `merkle`).
    #[must_use]
    pub fn merkle_base(&self, index: usize) -> u64 {
        MERKLE_ARENA_BASE + index as u64 * MERKLE_ARENA_STRIDE
    }

    /// Serializes (stable format — hashed inside bitstreams).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.regions.len() as u32);
        for region in &self.regions {
            w.put_str(&region.name);
            w.put_u64(region.range.start);
            w.put_u64(region.range.len);
            region.engine_set.serialize(&mut w);
        }
        w.put_u32(self.register_interface.num_registers as u32);
        w.put_bool(self.register_interface.hide_addresses);
        w.finish()
    }

    /// Parses the `to_bytes` format.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        let mut r = Reader::new(bytes);
        let n = r.get_u32()? as usize;
        // A serialized region is at least 57 bytes (name length prefix,
        // two u64 range fields, engine-set encoding), so a count the
        // remaining input cannot possibly hold is malformed — reject it
        // instead of pre-allocating gigabytes from a corrupt prefix.
        if n > bytes.len() / 32 {
            return Err(ShefError::Malformed(format!(
                "region count {n} exceeds input"
            )));
        }
        let mut regions = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let start = r.get_u64()?;
            let len = r.get_u64()?;
            let engine_set = EngineSetConfig::deserialize(&mut r)?;
            regions.push(RegionConfig {
                name,
                range: MemRange::new(start, len),
                engine_set,
            });
        }
        let register_interface = RegisterInterfaceConfig {
            num_registers: r.get_u32()? as usize,
            hide_addresses: r.get_bool()?,
        };
        r.finish()?;
        Ok(ShieldConfig {
            regions,
            register_interface,
        })
    }
}

/// Builder for [`ShieldConfig`].
#[derive(Debug, Default)]
pub struct ShieldConfigBuilder {
    regions: Vec<RegionConfig>,
    register_interface: RegisterInterfaceConfig,
}

impl ShieldConfigBuilder {
    /// Adds a protected memory region.
    pub fn region(mut self, name: &str, range: MemRange, engine_set: EngineSetConfig) -> Self {
        self.regions.push(RegionConfig {
            name: name.to_owned(),
            range,
            engine_set,
        });
        self
    }

    /// Sets register-interface options.
    pub fn register_interface(mut self, cfg: RegisterInterfaceConfig) -> Self {
        self.register_interface = cfg;
        self
    }

    /// Finalizes and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] if invariants are violated.
    pub fn build(self) -> Result<ShieldConfig, ShefError> {
        let cfg = ShieldConfig {
            regions: self.regions,
            register_interface: self.register_interface,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn es(chunk: usize) -> EngineSetConfig {
        EngineSetConfig {
            chunk_size: chunk,
            ..EngineSetConfig::default()
        }
    }

    #[test]
    fn builder_and_lookup() {
        let cfg = ShieldConfig::builder()
            .region("in", MemRange::new(0, 4096), es(512))
            .region("out", MemRange::new(8192, 4096), es(512))
            .build()
            .unwrap();
        assert_eq!(cfg.region_for(0), Some(0));
        assert_eq!(cfg.region_for(4095), Some(0));
        assert_eq!(cfg.region_for(4096), None);
        assert_eq!(cfg.region_for(8192), Some(1));
        assert_ne!(cfg.tag_base(0), cfg.tag_base(1));
    }

    #[test]
    fn overlapping_regions_rejected() {
        let err = ShieldConfig::builder()
            .region("a", MemRange::new(0, 4096), es(512))
            .region("b", MemRange::new(2048, 4096), es(512))
            .build()
            .unwrap_err();
        assert!(matches!(err, ShefError::InvalidConfig(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = ShieldConfig::builder()
            .region("a", MemRange::new(0, 4096), es(512))
            .region("a", MemRange::new(8192, 4096), es(512))
            .build()
            .unwrap_err();
        assert!(matches!(err, ShefError::InvalidConfig(_)));
    }

    #[test]
    fn tiny_buffer_rejected() {
        let mut e = es(512);
        e.buffer_bytes = 128;
        let err = ShieldConfig::builder()
            .region("a", MemRange::new(0, 4096), e)
            .build()
            .unwrap_err();
        assert!(matches!(err, ShefError::InvalidConfig(_)));
    }

    #[test]
    fn zero_engines_rejected() {
        let mut e = es(512);
        e.aes_engines = 0;
        assert!(ShieldConfig::builder()
            .region("a", MemRange::new(0, 4096), e)
            .build()
            .is_err());
    }

    #[test]
    fn serialization_round_trip() {
        let mut e = es(4096);
        e.aes_engines = 4;
        e.mac = MacAlgorithm::PmacAes;
        e.mac_engines = 4;
        e.buffer_bytes = 128 * 1024;
        e.counters = true;
        e.key_size = AesKeySize::Aes256;
        e.sbox = SBoxParallelism::X4;
        let cfg = ShieldConfig::builder()
            .region("weights", MemRange::new(0, 1 << 20), e)
            .register_interface(RegisterInterfaceConfig {
                num_registers: 8,
                hide_addresses: true,
            })
            .build()
            .unwrap();
        let parsed = ShieldConfig::from_bytes(&cfg.to_bytes()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn mem_range_relations() {
        let r = MemRange::new(100, 50);
        assert!(r.contains(100));
        assert!(r.contains(149));
        assert!(!r.contains(150));
        assert!(r.contains_span(100, 50));
        assert!(!r.contains_span(100, 51));
        assert!(r.overlaps(&MemRange::new(149, 10)));
        assert!(!r.overlaps(&MemRange::new(150, 10)));
    }

    #[test]
    fn describe_is_readable() {
        let d = es(512).describe();
        assert!(d.contains("AES-128"));
        assert!(d.contains("HMAC"));
        assert!(d.contains("512"));
    }

    #[test]
    fn counters_and_merkle_are_mutually_exclusive() {
        let mut e = es(512);
        e.counters = true;
        e.merkle = Some(crate::shield::merkle::MerkleConfig::default());
        let err = ShieldConfig::builder()
            .region("a", MemRange::new(0, 4096), e)
            .build()
            .unwrap_err();
        assert!(matches!(err, ShefError::InvalidConfig(_)));
    }

    #[test]
    fn merkle_config_serializes_in_shield_config() {
        let mut e = es(64);
        e.merkle = Some(crate::shield::merkle::MerkleConfig {
            arity: 16,
            node_cache_bytes: 8192,
        });
        let cfg = ShieldConfig::builder()
            .region("fmap", MemRange::new(0, 1 << 20), e)
            .build()
            .unwrap();
        let parsed = ShieldConfig::from_bytes(&cfg.to_bytes()).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn corrupt_region_count_is_rejected_without_allocating() {
        // Regression: a corrupt 4-byte count prefix must be rejected up
        // front, not fed to Vec::with_capacity (a u32::MAX count used to
        // request a multi-gigabyte allocation and abort the process).
        let cfg = ShieldConfig::builder()
            .region("r", MemRange::new(0, 4096), es(512))
            .build()
            .unwrap();
        let mut bytes = cfg.to_bytes();
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ShieldConfig::from_bytes(&bytes),
            Err(ShefError::Malformed(_))
        ));
        // A count that is large but still conceivably within the input
        // length bound must fail cleanly in the parse loop, not panic.
        let in_bound_count = bytes.len() as u32 / 32;
        bytes[..4].copy_from_slice(&in_bound_count.to_le_bytes());
        assert!(ShieldConfig::from_bytes(&bytes).is_err());
    }

    #[test]
    fn merkle_describe_mentions_tree() {
        let mut e = es(64);
        e.merkle = Some(crate::shield::merkle::MerkleConfig::default());
        assert!(e.describe().contains("BMT"));
    }

    #[test]
    fn arena_bases_do_not_collide() {
        let cfg = ShieldConfig::builder()
            .region("a", MemRange::new(0, 4096), es(512))
            .region("b", MemRange::new(8192, 4096), es(512))
            .build()
            .unwrap();
        assert_ne!(cfg.merkle_base(0), cfg.merkle_base(1));
        assert!(cfg.merkle_base(0) >= TAG_ARENA_BASE + 2 * TAG_ARENA_STRIDE);
    }
}
