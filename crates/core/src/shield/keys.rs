//! Shield key schedule and Load-Key provisioning.
//!
//! Key flow (Fig. 2/Fig. 3): the IP Vendor embeds a private **Shield
//! Encryption Key** in each Shield at bitstream compile time; the Data
//! Owner generates a symmetric **Data Encryption Key**, encrypts it
//! against the public Shield Encryption Key to form the **Load Key**,
//! and ships the Load Key through the untrusted host. The Shield
//! decrypts the Load Key into ephemeral key storage and derives
//! independent per-region working keys.

use shef_crypto::authenc::{AuthEncKey, MacAlgorithm};
use shef_crypto::ecies::{self, EciesCiphertext, EciesKeyPair, EciesPublicKey};
use shef_crypto::hkdf;

use super::config::RegionConfig;
use crate::ShefError;

/// Associated-data label binding Load Keys to their purpose.
pub const LOAD_KEY_AD: &[u8] = b"shef.shield.load-key.v1";

/// The Data Owner's symmetric master key for one Shield.
#[derive(Clone)]
pub struct DataEncryptionKey {
    master: [u8; 32],
}

impl core::fmt::Debug for DataEncryptionKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DataEncryptionKey").finish_non_exhaustive()
    }
}

impl DataEncryptionKey {
    /// Wraps raw key bytes.
    #[must_use]
    pub fn from_bytes(master: [u8; 32]) -> Self {
        DataEncryptionKey { master }
    }

    /// Raw bytes (for sealing into a Load Key).
    #[must_use]
    pub fn to_bytes(&self) -> [u8; 32] {
        self.master
    }

    /// Derives the working key for a region. Both the Shield and the
    /// Data Owner's client-side encryption use this derivation, so
    /// ciphertexts interoperate.
    #[must_use]
    pub fn region_key(&self, region: &RegionConfig) -> AuthEncKey {
        let info = format!("shef.region.key.{}", region.name);
        let master = hkdf::derive_key32(b"shef.shield", &self.master, info.as_bytes());
        AuthEncKey::with_key_size(master, region.engine_set.mac, region.engine_set.key_size)
    }

    /// Derives the 8-byte IV nonce for a region.
    #[must_use]
    pub fn region_nonce(&self, region: &RegionConfig) -> [u8; 8] {
        let info = format!("shef.region.nonce.{}", region.name);
        let bytes = hkdf::derive(b"shef.shield", &self.master, info.as_bytes(), 8);
        bytes.try_into().expect("8 bytes requested")
    }

    /// Derives the MAC key for a region's Merkle-tree nodes (the Bonsai-
    /// Merkle-Tree replay defence). Independent from the data key so a
    /// tree-node digest can never be confused with a chunk tag.
    #[must_use]
    pub fn region_tree_key(&self, region: &RegionConfig) -> [u8; 32] {
        let info = format!("shef.region.tree.{}", region.name);
        hkdf::derive_key32(b"shef.shield", &self.master, info.as_bytes())
    }

    /// Derives the register-interface key.
    #[must_use]
    pub fn register_key(&self) -> AuthEncKey {
        let master = hkdf::derive_key32(b"shef.shield", &self.master, b"shef.regif.key");
        AuthEncKey::from_bytes(master, MacAlgorithm::HmacSha256)
    }

    /// Derives an independent per-tenant key domain from this master
    /// key. The multi-tenant service provisions each tenant's Shield
    /// with `tenant_key(name)`, so every region key, nonce, tree key
    /// and register key downstream of it is disjoint across tenants:
    /// the same address in two tenants' namespaces never shares
    /// ciphertext, tags, or freshness state. Client-side tooling uses
    /// the same derivation to decrypt a tenant's output.
    #[must_use]
    pub fn tenant_key(&self, tenant: &str) -> DataEncryptionKey {
        let info = format!("shef.tenant.key.{tenant}");
        DataEncryptionKey {
            master: hkdf::derive_key32(b"shef.shield", &self.master, info.as_bytes()),
        }
    }

    /// Encrypts this key against a Shield's public encryption key,
    /// producing the Load Key (Fig. 3 step 8).
    #[must_use]
    pub fn to_load_key(&self, shield_public: &EciesPublicKey) -> LoadKey {
        LoadKey(ecies::encrypt(shield_public, &self.master, LOAD_KEY_AD))
    }
}

/// A Data Encryption Key sealed for a specific Shield.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadKey(pub EciesCiphertext);

impl LoadKey {
    /// Wire encoding (what the host program forwards).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on truncated input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        Ok(LoadKey(EciesCiphertext::from_bytes(bytes).map_err(
            |e| ShefError::Malformed(format!("bad load key: {e}")),
        )?))
    }
}

/// The Shield-side ephemeral key storage (Fig. 4 "Key Storage").
pub struct KeyStorage {
    shield_keypair: EciesKeyPair,
    data_key: Option<DataEncryptionKey>,
}

impl core::fmt::Debug for KeyStorage {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KeyStorage")
            .field("provisioned", &self.data_key.is_some())
            .finish_non_exhaustive()
    }
}

impl KeyStorage {
    /// Creates storage around the Shield's embedded private key.
    #[must_use]
    pub fn new(shield_keypair: EciesKeyPair) -> Self {
        KeyStorage {
            shield_keypair,
            data_key: None,
        }
    }

    /// Public half of the embedded Shield Encryption Key (published by
    /// the IP Vendor; used by Data Owners to build Load Keys).
    #[must_use]
    pub fn shield_public(&self) -> EciesPublicKey {
        self.shield_keypair.public_key()
    }

    /// Decrypts a Load Key and stores the Data Encryption Key.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Crypto`] if the Load Key was not encrypted
    /// for this Shield.
    pub fn provision(&mut self, load_key: &LoadKey) -> Result<(), ShefError> {
        let master = ecies::decrypt(&self.shield_keypair, &load_key.0, LOAD_KEY_AD)?;
        let master: [u8; 32] = master
            .try_into()
            .map_err(|_| ShefError::Malformed("load key payload must be 32 bytes".into()))?;
        self.data_key = Some(DataEncryptionKey::from_bytes(master));
        Ok(())
    }

    /// The provisioned Data Encryption Key.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::KeyNotProvisioned`] before provisioning.
    pub fn data_key(&self) -> Result<&DataEncryptionKey, ShefError> {
        self.data_key
            .as_ref()
            .ok_or_else(|| ShefError::KeyNotProvisioned("data encryption key".into()))
    }

    /// True once a Load Key has been accepted.
    #[must_use]
    pub fn is_provisioned(&self) -> bool {
        self.data_key.is_some()
    }

    /// Erases the ephemeral keys (end of session / tamper response).
    pub fn zeroize(&mut self) {
        self.data_key = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::config::{EngineSetConfig, MemRange, RegionConfig};

    fn region(name: &str) -> RegionConfig {
        RegionConfig {
            name: name.into(),
            range: MemRange::new(0, 4096),
            engine_set: EngineSetConfig::default(),
        }
    }

    #[test]
    fn load_key_round_trip() {
        let shield = EciesKeyPair::from_seed(b"shield");
        let dek = DataEncryptionKey::from_bytes([9u8; 32]);
        let lk = dek.to_load_key(&shield.public_key());
        let mut storage = KeyStorage::new(shield);
        assert!(!storage.is_provisioned());
        storage.provision(&lk).unwrap();
        assert!(storage.is_provisioned());
        assert_eq!(storage.data_key().unwrap().to_bytes(), [9u8; 32]);
    }

    #[test]
    fn load_key_for_wrong_shield_rejected() {
        let shield_a = EciesKeyPair::from_seed(b"a");
        let shield_b = EciesKeyPair::from_seed(b"b");
        let dek = DataEncryptionKey::from_bytes([1u8; 32]);
        let lk = dek.to_load_key(&shield_a.public_key());
        let mut storage = KeyStorage::new(shield_b);
        assert!(storage.provision(&lk).is_err());
        assert!(!storage.is_provisioned());
    }

    #[test]
    fn unprovisioned_access_fails() {
        let storage = KeyStorage::new(EciesKeyPair::from_seed(b"s"));
        assert!(matches!(
            storage.data_key(),
            Err(ShefError::KeyNotProvisioned(_))
        ));
    }

    #[test]
    fn per_region_keys_are_independent() {
        let dek = DataEncryptionKey::from_bytes([5u8; 32]);
        let ra = region("a");
        let rb = region("b");
        let mut ka = dek.region_key(&ra);
        let kb = dek.region_key(&rb);
        let sealed = ka.seal(b"data", b"");
        assert!(kb.open(&sealed, b"").is_err(), "region keys must differ");
        assert_ne!(dek.region_nonce(&ra), dek.region_nonce(&rb));
    }

    #[test]
    fn derivations_are_deterministic() {
        let d1 = DataEncryptionKey::from_bytes([5u8; 32]);
        let d2 = DataEncryptionKey::from_bytes([5u8; 32]);
        let r = region("x");
        assert_eq!(d1.region_nonce(&r), d2.region_nonce(&r));
        // Same key bytes → interoperable seal/open.
        let mut k1 = d1.region_key(&r);
        let k2 = d2.region_key(&r);
        let sealed = k1.seal(b"payload", b"ad");
        assert_eq!(k2.open(&sealed, b"ad").unwrap(), b"payload");
    }

    #[test]
    fn tenant_keys_are_independent_and_deterministic() {
        let master = DataEncryptionKey::from_bytes([7u8; 32]);
        let a = master.tenant_key("alice");
        let b = master.tenant_key("bob");
        assert_ne!(a.to_bytes(), b.to_bytes(), "tenant domains must differ");
        assert_ne!(a.to_bytes(), master.to_bytes());
        // Same tenant name → same domain (client-side re-derivation).
        assert_eq!(a.to_bytes(), master.tenant_key("alice").to_bytes());
        // Region keys under different tenant domains do not interoperate
        // even for the same region name (same address namespace).
        let r = region("shared");
        let mut ka = a.region_key(&r);
        let kb = b.region_key(&r);
        let sealed = ka.seal(b"tenant a secret", b"");
        assert!(kb.open(&sealed, b"").is_err());
    }

    #[test]
    fn zeroize_clears_keys() {
        let shield = EciesKeyPair::from_seed(b"shield");
        let dek = DataEncryptionKey::from_bytes([9u8; 32]);
        let lk = dek.to_load_key(&shield.public_key());
        let mut storage = KeyStorage::new(shield);
        storage.provision(&lk).unwrap();
        storage.zeroize();
        assert!(!storage.is_provisioned());
    }

    #[test]
    fn load_key_wire_round_trip() {
        let shield = EciesKeyPair::from_seed(b"shield");
        let dek = DataEncryptionKey::from_bytes([3u8; 32]);
        let lk = dek.to_load_key(&shield.public_key());
        let parsed = LoadKey::from_bytes(&lk.to_bytes()).unwrap();
        assert_eq!(parsed, lk);
    }
}
