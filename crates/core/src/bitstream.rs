//! The ShEF partial-bitstream container.
//!
//! An IP Vendor's compiled design bundles (§3 steps 3–4): the accelerator
//! logic (opaque payload in this simulation), the Shield configuration,
//! and the embedded private Shield Encryption Key. The whole container
//! is sealed under the vendor's symmetric **Bitstream Encryption Key**,
//! providing IP confidentiality; the Security Kernel only ever decrypts
//! it in secure on-chip memory after attestation releases the key.

use shef_crypto::authenc::{AuthEncKey, MacAlgorithm, Sealed};
use shef_crypto::ecies::EciesKeyPair;
use shef_crypto::sha2::Sha256;

use crate::shield::ShieldConfig;
use crate::wire::{Reader, Writer};
use crate::ShefError;

/// Magic prefix of a plaintext bitstream.
pub const BITSTREAM_MAGIC: &[u8; 8] = b"SHEFBITS";
/// Container format version.
pub const BITSTREAM_VERSION: u16 = 1;
/// Associated data binding sealed containers to their purpose.
const BITSTREAM_AD: &[u8] = b"shef.bitstream.v1";

/// A plaintext partial bitstream (never leaves trusted environments:
/// the vendor's workstation or the Security Kernel's on-chip memory).
#[derive(Clone)]
pub struct Bitstream {
    /// Accelerator identifier (e.g. `"dnnweaver"`).
    pub accel_id: String,
    /// The Shield configuration compiled into the design.
    pub shield_config: ShieldConfig,
    /// The private Shield Encryption Key embedded in the Shield.
    pub shield_key_seed: [u8; 32],
    /// Opaque accelerator logic payload (stands in for the netlist).
    pub logic: Vec<u8>,
}

impl core::fmt::Debug for Bitstream {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Bitstream")
            .field("accel_id", &self.accel_id)
            .field("regions", &self.shield_config.regions.len())
            .field("logic_bytes", &self.logic.len())
            .finish_non_exhaustive()
    }
}

impl Bitstream {
    /// Serializes the plaintext container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_fixed(BITSTREAM_MAGIC);
        w.put_u16(BITSTREAM_VERSION);
        w.put_str(&self.accel_id);
        w.put_bytes(&self.shield_config.to_bytes());
        w.put_fixed(&self.shield_key_seed);
        w.put_bytes(&self.logic);
        w.finish()
    }

    /// Parses a plaintext container.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on bad magic/version/layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        let mut r = Reader::new(bytes);
        let magic = r.get_fixed::<8>()?;
        if &magic != BITSTREAM_MAGIC {
            return Err(ShefError::Malformed("bad bitstream magic".into()));
        }
        let version = r.get_u16()?;
        if version != BITSTREAM_VERSION {
            return Err(ShefError::Malformed(format!(
                "unsupported bitstream version {version}"
            )));
        }
        let accel_id = r.get_str()?;
        let shield_config = ShieldConfig::from_bytes(&r.get_bytes()?)?;
        let shield_key_seed = r.get_fixed::<32>()?;
        let logic = r.get_bytes()?;
        r.finish()?;
        Ok(Bitstream {
            accel_id,
            shield_config,
            shield_key_seed,
            logic,
        })
    }

    /// The Shield key pair this bitstream embeds.
    #[must_use]
    pub fn shield_keypair(&self) -> EciesKeyPair {
        EciesKeyPair::from_seed(&self.shield_key_seed)
    }
}

/// The vendor's symmetric Bitstream Encryption Key.
#[derive(Clone)]
pub struct BitstreamKey(pub [u8; 32]);

impl core::fmt::Debug for BitstreamKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BitstreamKey").finish_non_exhaustive()
    }
}

impl BitstreamKey {
    fn cipher(&self) -> AuthEncKey {
        AuthEncKey::from_bytes(self.0, MacAlgorithm::HmacSha256)
    }
}

/// An encrypted bitstream as distributed on a marketplace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedBitstream(pub Vec<u8>);

impl EncryptedBitstream {
    /// Seals a plaintext bitstream (vendor side, Fig. 2 step 4).
    #[must_use]
    pub fn seal(bitstream: &Bitstream, key: &BitstreamKey) -> Self {
        let mut cipher = key.cipher();
        EncryptedBitstream(cipher.seal(&bitstream.to_bytes(), BITSTREAM_AD).to_bytes())
    }

    /// Opens an encrypted bitstream (Security Kernel side, after the key
    /// arrives over the attestation session).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Crypto`] if the key is wrong or the
    /// container was tampered with.
    pub fn open(&self, key: &BitstreamKey) -> Result<Bitstream, ShefError> {
        let sealed = Sealed::from_bytes(&self.0)?;
        let plain = key.cipher().open(&sealed, BITSTREAM_AD)?;
        Bitstream::from_bytes(&plain)
    }

    /// SHA-256 of the encrypted container — the
    /// `H(Enc_BitstrKey(Accelerator))` bound into attestation reports.
    #[must_use]
    pub fn hash(&self) -> [u8; 32] {
        Sha256::digest(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::{EngineSetConfig, MemRange};

    fn bitstream() -> Bitstream {
        Bitstream {
            accel_id: "vecadd".into(),
            shield_config: ShieldConfig::builder()
                .region("in", MemRange::new(0, 4096), EngineSetConfig::default())
                .build()
                .unwrap(),
            shield_key_seed: [0x77u8; 32],
            logic: vec![0xAB; 1000],
        }
    }

    #[test]
    fn plaintext_round_trip() {
        let b = bitstream();
        let parsed = Bitstream::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(parsed.accel_id, "vecadd");
        assert_eq!(parsed.shield_config, b.shield_config);
        assert_eq!(parsed.logic, b.logic);
        assert_eq!(parsed.shield_key_seed, b.shield_key_seed);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = bitstream().to_bytes();
        bytes[0] ^= 1;
        assert!(Bitstream::from_bytes(&bytes).is_err());
    }

    #[test]
    fn encrypted_round_trip() {
        let b = bitstream();
        let key = BitstreamKey([9u8; 32]);
        let enc = EncryptedBitstream::seal(&b, &key);
        let opened = enc.open(&key).unwrap();
        assert_eq!(opened.accel_id, b.accel_id);
        // Ciphertext does not contain the shield key seed in the clear.
        let needle = &b.shield_key_seed[..];
        assert!(!enc.0.windows(needle.len()).any(|w| w == needle));
    }

    #[test]
    fn wrong_key_rejected() {
        let enc = EncryptedBitstream::seal(&bitstream(), &BitstreamKey([1u8; 32]));
        assert!(enc.open(&BitstreamKey([2u8; 32])).is_err());
    }

    #[test]
    fn tampering_rejected() {
        let mut enc = EncryptedBitstream::seal(&bitstream(), &BitstreamKey([1u8; 32]));
        let n = enc.0.len();
        enc.0[n / 2] ^= 0x40;
        assert!(enc.open(&BitstreamKey([1u8; 32])).is_err());
    }

    #[test]
    fn hash_is_stable_and_tamper_evident() {
        let key = BitstreamKey([1u8; 32]);
        let enc = EncryptedBitstream::seal(&bitstream(), &key);
        let h1 = enc.hash();
        assert_eq!(h1, enc.hash());
        let mut tampered = enc.clone();
        tampered.0[0] ^= 1;
        assert_ne!(h1, tampered.hash());
    }

    #[test]
    fn shield_keypair_is_deterministic() {
        let b = bitstream();
        assert_eq!(
            b.shield_keypair().public_key(),
            b.shield_keypair().public_key()
        );
    }
}
