//! The remote attestation protocol of Fig. 3.
//!
//! Three parties, two untrusted hops:
//!
//! ```text
//! Data Owner ──TLS──▶ IP Vendor ──(untrusted host)──▶ Security Kernel
//! ```
//!
//! 1. The IP Vendor issues a fresh nonce `n` and an ephemeral
//!    Verification Key, forwarded to the Security Kernel.
//! 2. The kernel hashes the staged encrypted bitstream, derives
//!    `SessionKey = DHKE(VerifKey, AttestKey)`, certifies it
//!    (σ_SessionKey), assembles the attestation report
//!    `α = (n, H(Enc(Accel)), AttestKey_pub, H(SecKrnl), σ_SecKrnl)` and
//!    signs it (σ_α).
//! 3. The vendor validates the chain: device CA ✓, kernel hash in the
//!    public registry ✓, nonce fresh ✓, bitstream hash correct ✓,
//!    session-key certificate ✓ — then releases the Bitstream Encryption
//!    Key over the session channel.
//! 4. The kernel decrypts and loads the accelerator via partial
//!    reconfiguration; the Data Owner receives the public Shield
//!    Encryption Key and builds Load Keys.

use shef_crypto::authenc::{AuthEncKey, MacAlgorithm, Sealed};
use shef_crypto::ecies::EciesKeyPair;
use shef_crypto::ed25519::{Signature, VerifyingKey};
use shef_crypto::hkdf;
use shef_crypto::sha2::Sha256;
use shef_fpga::board::{image_names, Board};

use crate::bitstream::{Bitstream, BitstreamKey, EncryptedBitstream};
use crate::boot::{self, seckrnl_cert_message, slots};
use crate::wire::{Reader, Writer};
use crate::ShefError;

/// Associated data for the Bitstream-Key hand-off message.
const BITSTREAM_KEY_AD: &[u8] = b"shef.attest.bitstream-key.v1";

/// The vendor's challenge: nonce + ephemeral Verification Key (Fig. 3
/// step 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationChallenge {
    /// Anti-replay nonce.
    pub nonce: [u8; 32],
    /// X25519 public half of the vendor's ephemeral Verification Key.
    pub verif_public: [u8; 32],
}

/// The attestation report α.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    /// Echoed challenge nonce.
    pub nonce: [u8; 32],
    /// `H(Enc_BitstrKey(Accelerator))` — hash of the staged encrypted
    /// bitstream.
    pub enc_bitstream_hash: [u8; 32],
    /// Attestation signing public key.
    pub attest_sign_public: VerifyingKey,
    /// Attestation Diffie–Hellman public key.
    pub attest_dh_public: [u8; 32],
    /// Measured Security Kernel hash.
    pub kernel_hash: [u8; 32],
    /// Device certificate σ_SecKrnl from secure boot.
    pub sigma_seckrnl: Signature,
}

impl AttestationReport {
    /// Canonical signing bytes of α.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_str("shef.attest.alpha.v1");
        w.put_fixed(&self.nonce);
        w.put_fixed(&self.enc_bitstream_hash);
        w.put_fixed(&self.attest_sign_public.0);
        w.put_fixed(&self.attest_dh_public);
        w.put_fixed(&self.kernel_hash);
        w.put_fixed(&self.sigma_seckrnl.0);
        w.finish()
    }

    /// Parses the canonical bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Malformed`] on bad layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ShefError> {
        let mut r = Reader::new(bytes);
        let tag = r.get_str()?;
        if tag != "shef.attest.alpha.v1" {
            return Err(ShefError::Malformed("bad report tag".into()));
        }
        let report = AttestationReport {
            nonce: r.get_fixed::<32>()?,
            enc_bitstream_hash: r.get_fixed::<32>()?,
            attest_sign_public: VerifyingKey(r.get_fixed::<32>()?),
            attest_dh_public: r.get_fixed::<32>()?,
            kernel_hash: r.get_fixed::<32>()?,
            sigma_seckrnl: Signature(r.get_fixed::<64>()?),
        };
        r.finish()?;
        Ok(report)
    }
}

/// The kernel's full response: (α, σ_α, σ_SessionKey).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationResponse {
    /// The report α.
    pub report: AttestationReport,
    /// Signature over α with the attestation key.
    pub sigma_alpha: Signature,
    /// Certificate over the derived session key (MITM defence).
    pub sigma_session: Signature,
}

/// Derives the symmetric session key from a raw X25519 shared secret and
/// the transcript identifiers.
#[must_use]
pub fn derive_session_key(
    shared: &[u8; 32],
    nonce: &[u8; 32],
    attest_dh_public: &[u8; 32],
    verif_public: &[u8; 32],
) -> AuthEncKey {
    let mut ikm = Vec::with_capacity(128);
    ikm.extend_from_slice(shared);
    ikm.extend_from_slice(nonce);
    ikm.extend_from_slice(attest_dh_public);
    ikm.extend_from_slice(verif_public);
    let master = hkdf::derive_key32(b"shef.attest.session", &ikm, b"session-key");
    AuthEncKey::from_bytes(master, MacAlgorithm::HmacSha256)
}

/// Message over which σ_SessionKey is computed (a hash commitment to the
/// session key plus the nonce; revealing it leaks nothing about the key).
#[must_use]
pub fn session_cert_message(session_master: &[u8; 32], nonce: &[u8; 32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str("shef.attest.session-cert.v1");
    w.put_fixed(&Sha256::digest(session_master));
    w.put_fixed(nonce);
    w.finish()
}

/// Security-Kernel side: handles a challenge relayed by the untrusted
/// host (Fig. 3 steps 3–4).
///
/// # Errors
///
/// * [`ShefError::BootFailed`] if secure boot has not run.
/// * [`ShefError::Fpga`] if no encrypted bitstream is staged.
pub fn kernel_handle_challenge(
    board: &mut Board,
    challenge: &AttestationChallenge,
) -> Result<AttestationResponse, ShefError> {
    let (sign_key, dh_key) = boot::kernel_attestation_keys(board)?;
    let kernel_hash: [u8; 32] = board
        .device
        .sk_processor
        .private_memory()
        .load(slots::KERNEL_HASH)
        .ok_or_else(|| ShefError::BootFailed("kernel hash missing".into()))?
        .try_into()
        .map_err(|_| ShefError::BootFailed("corrupt kernel hash".into()))?;
    let sigma_seckrnl_bytes = board
        .device
        .sk_processor
        .private_memory()
        .load(slots::SIGMA_SECKRNL)
        .ok_or_else(|| ShefError::BootFailed("σ_SecKrnl missing".into()))?
        .to_vec();
    let sigma_seckrnl = Signature::from_bytes(&sigma_seckrnl_bytes)?;

    // Hash the staged encrypted accelerator bitstream.
    let enc_bitstream = board
        .boot_medium
        .load(image_names::ACCELERATOR_BITSTREAM)?
        .to_vec();
    let enc_bitstream_hash = Sha256::digest(&enc_bitstream);

    // Session key: DHKE(VerifKey_pub, AttestKey_priv).
    let shared = dh_key.diffie_hellman(&shef_crypto::ecies::EciesPublicKey(challenge.verif_public));
    let session = derive_session_key(
        &shared,
        &challenge.nonce,
        &dh_key.public_key().0,
        &challenge.verif_public,
    );
    let sigma_session = sign_key.sign(&session_cert_message(
        &session.master_bytes(),
        &challenge.nonce,
    ));

    // Persist session state in private memory for the key hand-off.
    let mem = board.device.sk_processor.private_memory();
    mem.store(slots::SESSION_KEY, session.master_bytes().to_vec());
    mem.store(slots::SESSION_NONCE, challenge.nonce.to_vec());

    let report = AttestationReport {
        nonce: challenge.nonce,
        enc_bitstream_hash,
        attest_sign_public: sign_key.verifying_key(),
        attest_dh_public: dh_key.public_key().0,
        kernel_hash,
        sigma_seckrnl,
    };
    let sigma_alpha = sign_key.sign(&report.to_bytes());
    Ok(AttestationResponse {
        report,
        sigma_alpha,
        sigma_session,
    })
}

/// Everything the IP Vendor needs to validate a response.
#[derive(Debug, Clone)]
pub struct VendorVerification<'a> {
    /// The certified device public key (from the Manufacturer's CA).
    pub device_public: VerifyingKey,
    /// The public registry of audited kernel hashes.
    pub known_kernels: &'a crate::pki::MeasurementRegistry,
    /// The nonce the vendor issued.
    pub expected_nonce: [u8; 32],
    /// The vendor's ephemeral Verification Key (private half).
    pub verif_key: &'a EciesKeyPair,
    /// Hash of the encrypted bitstream the vendor distributed.
    pub expected_bitstream_hash: [u8; 32],
}

/// IP Vendor side: validates (α, σ_α, σ_SessionKey) and derives the
/// session key (Fig. 3 step 5).
///
/// # Errors
///
/// Returns [`ShefError::AttestationFailed`] naming the first check that
/// failed.
pub fn vendor_verify(
    v: &VendorVerification<'_>,
    response: &AttestationResponse,
) -> Result<AuthEncKey, ShefError> {
    let report = &response.report;
    // 1. σ_SecKrnl proves a genuine device booted this kernel+keys.
    let msg = seckrnl_cert_message(
        &report.kernel_hash,
        &report.attest_sign_public,
        &report.attest_dh_public,
    );
    v.device_public
        .verify(&msg, &report.sigma_seckrnl)
        .map_err(|_| ShefError::AttestationFailed("σ_SecKrnl not signed by device key".into()))?;
    // 2. The kernel is an audited build.
    if !v.known_kernels.is_known_kernel(&report.kernel_hash) {
        return Err(ShefError::AttestationFailed(
            "security kernel hash not in public registry".into(),
        ));
    }
    // 3. σ_α under the attestation key.
    report
        .attest_sign_public
        .verify(&report.to_bytes(), &response.sigma_alpha)
        .map_err(|_| ShefError::AttestationFailed("σ_α invalid".into()))?;
    // 4. Nonce freshness.
    if report.nonce != v.expected_nonce {
        return Err(ShefError::AttestationFailed(
            "nonce mismatch (replay?)".into(),
        ));
    }
    // 5. Correct bitstream staged.
    if report.enc_bitstream_hash != v.expected_bitstream_hash {
        return Err(ShefError::AttestationFailed(
            "staged bitstream hash mismatch".into(),
        ));
    }
    // 6. Session key agreement + certificate.
    let shared = v
        .verif_key
        .diffie_hellman(&shef_crypto::ecies::EciesPublicKey(report.attest_dh_public));
    let session = derive_session_key(
        &shared,
        &report.nonce,
        &report.attest_dh_public,
        &v.verif_key.public_key().0,
    );
    report
        .attest_sign_public
        .verify(
            &session_cert_message(&session.master_bytes(), &report.nonce),
            &response.sigma_session,
        )
        .map_err(|_| ShefError::AttestationFailed("σ_SessionKey invalid".into()))?;
    Ok(session)
}

/// IP Vendor side: seals the Bitstream Encryption Key over the session
/// channel (Fig. 3 step 6).
#[must_use]
pub fn vendor_seal_bitstream_key(session: &mut AuthEncKey, key: &BitstreamKey) -> Sealed {
    session.seal(&key.0, BITSTREAM_KEY_AD)
}

/// Security-Kernel side: receives the sealed Bitstream Key, decrypts the
/// staged bitstream and loads it into the PR region.
///
/// Returns the plaintext [`Bitstream`] — in hardware this never leaves
/// the fabric; callers instantiate the Shield from it.
///
/// # Errors
///
/// * [`ShefError::ProtocolViolation`] without a prior challenge.
/// * [`ShefError::Crypto`] if the sealed key fails authentication.
/// * [`ShefError::Fpga`] if the Shell is not resident.
pub fn kernel_receive_bitstream_key(
    board: &mut Board,
    sealed_key: &Sealed,
) -> Result<Bitstream, ShefError> {
    let session_master = board
        .device
        .sk_processor
        .private_memory()
        .load(slots::SESSION_KEY)
        .ok_or_else(|| ShefError::ProtocolViolation("no attestation session established".into()))?
        .to_vec();
    let master: [u8; 32] = session_master
        .try_into()
        .map_err(|_| ShefError::ProtocolViolation("corrupt session key".into()))?;
    let session = AuthEncKey::from_bytes(master, MacAlgorithm::HmacSha256);
    let key_bytes = session.open(sealed_key, BITSTREAM_KEY_AD)?;
    let key = BitstreamKey(
        key_bytes
            .try_into()
            .map_err(|_| ShefError::Malformed("bitstream key must be 32 bytes".into()))?,
    );
    let enc = EncryptedBitstream(
        board
            .boot_medium
            .load(image_names::ACCELERATOR_BITSTREAM)?
            .to_vec(),
    );
    let bitstream = enc.open(&key)?;
    // Partial reconfiguration, mediated by the Security Kernel.
    board.device.fabric.load_partial(bitstream.to_bytes())?;
    Ok(bitstream)
}

/// Security-Kernel runtime duty: poll the tamper monitors; on any event,
/// halt the kernel, clear the PR region and report.
///
/// # Errors
///
/// Returns [`ShefError::TamperDetected`] describing the first event.
pub fn kernel_check_monitors(board: &mut Board) -> Result<(), ShefError> {
    let events = board.device.ports.take_events();
    if let Some(event) = events.first() {
        board.device.fabric.clear_partial();
        board.device.sk_processor.halt();
        return Err(ShefError::TamperDetected(format!(
            "{} access: {}",
            event.port, event.description
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::MeasurementRegistry;
    use crate::shield::{EngineSetConfig, MemRange, ShieldConfig};
    use shef_crypto::ed25519::SigningKey;
    use shef_fpga::keystore::KeyProtection;
    use shef_fpga::spb::seal_firmware;

    struct Fixture {
        board: Board,
        device_public: VerifyingKey,
        registry: MeasurementRegistry,
        enc_bitstream: EncryptedBitstream,
        bitstream_key: BitstreamKey,
    }

    fn fixture() -> Fixture {
        let mut board = Board::new(b"die-attest");
        let device_aes = [0x31u8; 32];
        board
            .device
            .keystore
            .burn_aes_key(device_aes, KeyProtection::PufWrapped)
            .unwrap();
        let fw = crate::boot::FirmwarePayload {
            device_key_seed: [0x32u8; 32],
        };
        board.boot_medium.store(
            image_names::SPB_FIRMWARE,
            seal_firmware(&device_aes, &fw.to_bytes()),
        );
        board
            .boot_medium
            .store(image_names::SECURITY_KERNEL, b"audited kernel".to_vec());

        let bitstream = Bitstream {
            accel_id: "test-accel".into(),
            shield_config: ShieldConfig::builder()
                .region("r", MemRange::new(0, 4096), EngineSetConfig::default())
                .build()
                .unwrap(),
            shield_key_seed: [0x33u8; 32],
            logic: vec![1, 2, 3],
        };
        let bitstream_key = BitstreamKey([0x34u8; 32]);
        let enc_bitstream = EncryptedBitstream::seal(&bitstream, &bitstream_key);
        board
            .boot_medium
            .store(image_names::ACCELERATOR_BITSTREAM, enc_bitstream.0.clone());

        let report = crate::boot::secure_boot(&mut board).unwrap();
        let mut registry = MeasurementRegistry::new();
        registry.publish_kernel_hash(report.kernel_hash);
        // CSP loads the shell before accelerator loading.
        board
            .device
            .fabric
            .load_shell("f1-shell", b"shell bits")
            .unwrap();

        Fixture {
            board,
            device_public: SigningKey::from_seed(&[0x32u8; 32]).verifying_key(),
            registry,
            enc_bitstream,
            bitstream_key,
        }
    }

    fn challenge(verif: &EciesKeyPair) -> AttestationChallenge {
        AttestationChallenge {
            nonce: [0xA5u8; 32],
            verif_public: verif.public_key().0,
        }
    }

    #[test]
    fn full_attestation_flow() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor-ephemeral");
        let ch = challenge(&verif);
        let response = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        let verification = VendorVerification {
            device_public: fx.device_public,
            known_kernels: &fx.registry,
            expected_nonce: ch.nonce,
            verif_key: &verif,
            expected_bitstream_hash: fx.enc_bitstream.hash(),
        };
        let mut session = vendor_verify(&verification, &response).unwrap();
        let sealed = vendor_seal_bitstream_key(&mut session, &fx.bitstream_key);
        let bitstream = kernel_receive_bitstream_key(&mut fx.board, &sealed).unwrap();
        assert_eq!(bitstream.accel_id, "test-accel");
        assert!(fx.board.device.fabric.partial().is_some());
    }

    #[test]
    fn wrong_nonce_rejected() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor");
        let ch = challenge(&verif);
        let response = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        let verification = VendorVerification {
            device_public: fx.device_public,
            known_kernels: &fx.registry,
            expected_nonce: [0u8; 32], // vendor expected a different nonce
            verif_key: &verif,
            expected_bitstream_hash: fx.enc_bitstream.hash(),
        };
        let err = vendor_verify(&verification, &response).unwrap_err();
        assert!(matches!(err, ShefError::AttestationFailed(m) if m.contains("nonce")));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor");
        let ch = challenge(&verif);
        let response = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        let empty_registry = MeasurementRegistry::new();
        let verification = VendorVerification {
            device_public: fx.device_public,
            known_kernels: &empty_registry,
            expected_nonce: ch.nonce,
            verif_key: &verif,
            expected_bitstream_hash: fx.enc_bitstream.hash(),
        };
        let err = vendor_verify(&verification, &response).unwrap_err();
        assert!(matches!(err, ShefError::AttestationFailed(m) if m.contains("registry")));
    }

    #[test]
    fn swapped_bitstream_rejected() {
        let mut fx = fixture();
        // Adversary stages a different encrypted bitstream.
        fx.board
            .boot_medium
            .store(image_names::ACCELERATOR_BITSTREAM, vec![0xEE; 500]);
        let verif = EciesKeyPair::from_seed(b"vendor");
        let ch = challenge(&verif);
        let response = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        let verification = VendorVerification {
            device_public: fx.device_public,
            known_kernels: &fx.registry,
            expected_nonce: ch.nonce,
            verif_key: &verif,
            expected_bitstream_hash: fx.enc_bitstream.hash(),
        };
        let err = vendor_verify(&verification, &response).unwrap_err();
        assert!(matches!(err, ShefError::AttestationFailed(m) if m.contains("bitstream")));
    }

    #[test]
    fn forged_device_rejected() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor");
        let ch = challenge(&verif);
        let response = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        // Vendor checks against a different device's public key.
        let other_device = SigningKey::from_seed(&[0x99u8; 32]).verifying_key();
        let verification = VendorVerification {
            device_public: other_device,
            known_kernels: &fx.registry,
            expected_nonce: ch.nonce,
            verif_key: &verif,
            expected_bitstream_hash: fx.enc_bitstream.hash(),
        };
        let err = vendor_verify(&verification, &response).unwrap_err();
        assert!(matches!(err, ShefError::AttestationFailed(m) if m.contains("device")));
    }

    #[test]
    fn tampered_report_rejected() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor");
        let ch = challenge(&verif);
        let mut response = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        response.report.enc_bitstream_hash[0] ^= 1;
        let verification = VendorVerification {
            device_public: fx.device_public,
            known_kernels: &fx.registry,
            expected_nonce: ch.nonce,
            verif_key: &verif,
            expected_bitstream_hash: response.report.enc_bitstream_hash,
        };
        // σ_α no longer covers the mutated report.
        let err = vendor_verify(&verification, &response).unwrap_err();
        assert!(matches!(err, ShefError::AttestationFailed(m) if m.contains("σ_α")));
    }

    #[test]
    fn bitstream_key_hand_off_requires_session() {
        let mut fx = fixture();
        // No challenge issued: hand-off must fail.
        let mut rogue_session = AuthEncKey::from_bytes([0u8; 32], MacAlgorithm::HmacSha256);
        let sealed = vendor_seal_bitstream_key(&mut rogue_session, &fx.bitstream_key);
        let err = kernel_receive_bitstream_key(&mut fx.board, &sealed).unwrap_err();
        assert!(matches!(err, ShefError::ProtocolViolation(_)));
    }

    #[test]
    fn wrong_session_key_rejected() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor");
        let ch = challenge(&verif);
        let _ = kernel_handle_challenge(&mut fx.board, &ch).unwrap();
        // A MITM that never learned the session key tries to inject its
        // own bitstream key.
        let mut mitm_session = AuthEncKey::from_bytes([0xBBu8; 32], MacAlgorithm::HmacSha256);
        let sealed = vendor_seal_bitstream_key(&mut mitm_session, &BitstreamKey([0xCC; 32]));
        assert!(kernel_receive_bitstream_key(&mut fx.board, &sealed).is_err());
    }

    #[test]
    fn monitor_trip_halts_kernel() {
        let mut fx = fixture();
        fx.board
            .device
            .ports
            .adversarial_access(shef_fpga::ports::DebugPort::Jtag, "probe");
        let err = kernel_check_monitors(&mut fx.board).unwrap_err();
        assert!(matches!(err, ShefError::TamperDetected(_)));
        assert!(!fx.board.device.sk_processor.is_running());
        assert!(fx.board.device.fabric.partial().is_none());
    }

    #[test]
    fn clean_monitors_pass() {
        let mut fx = fixture();
        kernel_check_monitors(&mut fx.board).unwrap();
        assert!(fx.board.device.sk_processor.is_running());
    }

    #[test]
    fn report_serialization_round_trip() {
        let mut fx = fixture();
        let verif = EciesKeyPair::from_seed(b"vendor");
        let response = kernel_handle_challenge(&mut fx.board, &challenge(&verif)).unwrap();
        let parsed = AttestationReport::from_bytes(&response.report.to_bytes()).unwrap();
        assert_eq!(parsed, response.report);
    }
}
