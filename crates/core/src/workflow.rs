//! The four parties of Fig. 2 and the eleven-step ShEF lifecycle.
//!
//! * [`Manufacturer`] — fabricates devices, burns keys, runs the CA.
//! * [`Csp`] — racks boards, loads the Shell, sells instances.
//! * [`IpVendor`] — develops shielded accelerators, runs the attestation
//!   service, distributes encrypted bitstreams.
//! * [`DataOwner`] — rents an instance, orchestrates boot + attestation,
//!   provisions keys and data, runs the accelerator.
//!
//! The lifecycle is exercised end-to-end by `tests/end_to_end.rs` and the
//! `quickstart` example.

use shef_crypto::drbg::HmacDrbg;
use shef_crypto::ecies::{EciesKeyPair, EciesPublicKey};
use shef_crypto::ed25519::SigningKey;
use shef_fpga::board::{image_names, Board};
use shef_fpga::keystore::KeyProtection;
use shef_fpga::spb::seal_firmware;

use crate::attest::{
    kernel_handle_challenge, kernel_receive_bitstream_key, vendor_seal_bitstream_key,
    vendor_verify, AttestationChallenge, AttestationResponse, VendorVerification,
};
use crate::bitstream::{Bitstream, BitstreamKey, EncryptedBitstream};
use crate::boot::{secure_boot, BootReport, FirmwarePayload};
use crate::pki::{CertSubject, CertificateAuthority, MeasurementRegistry};
use crate::shield::{DataEncryptionKey, LoadKey, Shield, ShieldConfig};
use crate::ShefError;

/// The canonical open-source Security Kernel binary used across the
/// workspace. Its hash is what the measurement registry publishes.
pub const SECURITY_KERNEL_BINARY: &[u8] = b"shef-security-kernel v1.0 (open source)";

/// The FPGA Manufacturer: provisions devices and operates the root CA.
pub struct Manufacturer {
    ca: CertificateAuthority,
    rng: HmacDrbg,
}

impl core::fmt::Debug for Manufacturer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Manufacturer")
            .field("ca", &self.ca)
            .finish_non_exhaustive()
    }
}

impl Manufacturer {
    /// Creates a manufacturer with a deterministic CA root.
    #[must_use]
    pub fn new(seed: &[u8]) -> Self {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca_seed = rng.generate_array::<32>();
        Manufacturer {
            ca: CertificateAuthority::new(&ca_seed),
            rng,
        }
    }

    /// The CA root key all parties pin.
    #[must_use]
    pub fn ca_root(&self) -> shef_crypto::ed25519::VerifyingKey {
        self.ca.root_public()
    }

    /// Read access to the CA (certificate lookups).
    #[must_use]
    pub fn ca(&self) -> &CertificateAuthority {
        &self.ca
    }

    /// Fig. 2 steps 1–2: burns the AES device key, embeds the private
    /// device key in AES-sealed firmware, registers the public device
    /// key with the CA.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Fpga`] if the device was already provisioned.
    pub fn provision_device(&mut self, board: &mut Board) -> Result<(), ShefError> {
        let aes_key = self.rng.generate_array::<32>();
        let device_key_seed = self.rng.generate_array::<32>();
        board
            .device
            .keystore
            .burn_aes_key(aes_key, KeyProtection::PufWrapped)?;
        let firmware = FirmwarePayload { device_key_seed };
        board.boot_medium.store(
            image_names::SPB_FIRMWARE,
            seal_firmware(&aes_key, &firmware.to_bytes()),
        );
        let device_public = SigningKey::from_seed(&device_key_seed).verifying_key();
        self.ca.issue(
            CertSubject::Device {
                die_serial: board.device.die_serial().to_vec(),
            },
            device_public,
        );
        Ok(())
    }
}

/// The Cloud Service Provider: owns boards and the Shell.
#[derive(Debug, Default)]
pub struct Csp {
    shell_version: String,
}

impl Csp {
    /// Creates a CSP deploying the given Shell version.
    #[must_use]
    pub fn new(shell_version: &str) -> Self {
        Csp {
            shell_version: shell_version.to_owned(),
        }
    }

    /// Racks a provisioned board: stages the Security Kernel and loads
    /// the Shell static region (done through the Security Kernel in the
    /// real flow; the CSP "can fully control and audit the Shell loading
    /// process", §3).
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::Fpga`] if the Shell is already resident.
    pub fn rack_board(&self, board: &mut Board) -> Result<(), ShefError> {
        board.boot_medium.store(
            image_names::SECURITY_KERNEL,
            SECURITY_KERNEL_BINARY.to_vec(),
        );
        board
            .device
            .fabric
            .load_shell(&self.shell_version, b"aws-f1-shell-logic")?;
        Ok(())
    }
}

/// A packaged accelerator product on the vendor's marketplace page.
#[derive(Debug, Clone)]
pub struct AcceleratorProduct {
    /// Marketplace identifier.
    pub accel_id: String,
    /// The encrypted partial bitstream customers download.
    pub encrypted_bitstream: EncryptedBitstream,
    /// Public Shield Encryption Key for Load-Key construction.
    pub shield_public: EciesPublicKey,
}

/// The IP Vendor: develops accelerators and runs the attestation server.
pub struct IpVendor {
    name: String,
    rng: HmacDrbg,
    products: Vec<(AcceleratorProduct, BitstreamKey)>,
    registry: MeasurementRegistry,
    ca_root: shef_crypto::ed25519::VerifyingKey,
}

impl core::fmt::Debug for IpVendor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("IpVendor")
            .field("name", &self.name)
            .field("products", &self.products.len())
            .finish_non_exhaustive()
    }
}

impl IpVendor {
    /// Creates a vendor trusting the given CA root and kernel registry.
    #[must_use]
    pub fn new(
        name: &str,
        ca_root: shef_crypto::ed25519::VerifyingKey,
        registry: MeasurementRegistry,
    ) -> Self {
        IpVendor {
            name: name.to_owned(),
            rng: HmacDrbg::from_seed(format!("shef.vendor.{name}").as_bytes()),
            products: Vec::new(),
            registry,
            ca_root,
        }
    }

    /// Vendor name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fig. 2 steps 3–4: wraps accelerator logic with a Shield config,
    /// provisions the Shield Encryption Key and Bitstream Encryption
    /// Key, and publishes the encrypted bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`ShefError::InvalidConfig`] for bad Shield configs.
    pub fn package_accelerator(
        &mut self,
        accel_id: &str,
        shield_config: ShieldConfig,
        logic: Vec<u8>,
    ) -> Result<AcceleratorProduct, ShefError> {
        shield_config.validate()?;
        let shield_key_seed = self.rng.generate_array::<32>();
        let bitstream_key = BitstreamKey(self.rng.generate_array::<32>());
        let bitstream = Bitstream {
            accel_id: accel_id.to_owned(),
            shield_config,
            shield_key_seed,
            logic,
        };
        let product = AcceleratorProduct {
            accel_id: accel_id.to_owned(),
            encrypted_bitstream: EncryptedBitstream::seal(&bitstream, &bitstream_key),
            shield_public: bitstream.shield_keypair().public_key(),
        };
        self.products.push((product.clone(), bitstream_key));
        Ok(product)
    }

    /// Starts an attestation session: issues a fresh nonce and an
    /// ephemeral Verification Key (Fig. 3 steps 1–2).
    #[must_use]
    pub fn begin_attestation(&mut self) -> (AttestationChallenge, VendorSession) {
        let nonce = self.rng.generate_array::<32>();
        let verif = EciesKeyPair::generate(&mut self.rng);
        (
            AttestationChallenge {
                nonce,
                verif_public: verif.public_key().0,
            },
            VendorSession { nonce, verif },
        )
    }

    /// Completes attestation: verifies the kernel's response against the
    /// device certificate and, on success, returns the Bitstream Key
    /// sealed for the kernel plus the product's Shield public key
    /// (Fig. 3 steps 5–7).
    ///
    /// # Errors
    ///
    /// * [`ShefError::AttestationFailed`] if any check fails.
    /// * [`ShefError::ProtocolViolation`] for unknown products/devices.
    pub fn complete_attestation(
        &mut self,
        session: &VendorSession,
        response: &AttestationResponse,
        device_cert: &crate::pki::Certificate,
        accel_id: &str,
    ) -> Result<(shef_crypto::authenc::Sealed, EciesPublicKey), ShefError> {
        device_cert
            .verify(&self.ca_root)
            .map_err(|_| ShefError::AttestationFailed("device certificate invalid".into()))?;
        let (product, bitstream_key) = self
            .products
            .iter()
            .find(|(p, _)| p.accel_id == accel_id)
            .ok_or_else(|| {
            ShefError::ProtocolViolation(format!("unknown product {accel_id}"))
        })?;
        let verification = VendorVerification {
            device_public: device_cert.public_key,
            known_kernels: &self.registry,
            expected_nonce: session.nonce,
            verif_key: &session.verif,
            expected_bitstream_hash: product.encrypted_bitstream.hash(),
        };
        let mut session_key = vendor_verify(&verification, response)?;
        let sealed = vendor_seal_bitstream_key(&mut session_key, bitstream_key);
        Ok((sealed, product.shield_public))
    }
}

/// The vendor's per-session ephemeral state.
pub struct VendorSession {
    nonce: [u8; 32],
    verif: EciesKeyPair,
}

impl core::fmt::Debug for VendorSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("VendorSession").finish_non_exhaustive()
    }
}

/// A fully attested, programmed FPGA instance, ready for data.
pub struct ProgrammedInstance {
    /// The board (host + device).
    pub board: Board,
    /// The Shield instantiated in the PR region.
    pub shield: Shield,
    /// The accelerator id carried by the loaded bitstream.
    pub accel_id: String,
    /// Opaque accelerator logic payload from the bitstream.
    pub logic: Vec<u8>,
    /// The boot report (for audit).
    pub boot_report: BootReport,
}

impl core::fmt::Debug for ProgrammedInstance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProgrammedInstance")
            .field("accel_id", &self.accel_id)
            .finish_non_exhaustive()
    }
}

/// The Data Owner: orchestrates the end-to-end flow.
pub struct DataOwner {
    rng: HmacDrbg,
}

impl core::fmt::Debug for DataOwner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DataOwner").finish_non_exhaustive()
    }
}

impl DataOwner {
    /// Creates a data owner with deterministic key material.
    #[must_use]
    pub fn new(seed: &[u8]) -> Self {
        DataOwner {
            rng: HmacDrbg::from_seed(seed),
        }
    }

    /// Fig. 2 steps 5–10: rents the board, stages the vendor's encrypted
    /// bitstream, triggers secure boot, relays attestation between the
    /// Security Kernel and the IP Vendor, and lets the kernel load the
    /// accelerator. Returns the programmed instance.
    ///
    /// # Errors
    ///
    /// Propagates boot, attestation, and fabric errors; fails if the
    /// loaded design does not match the requested product.
    pub fn deploy(
        &mut self,
        mut board: Board,
        vendor: &mut IpVendor,
        manufacturer: &Manufacturer,
        product: &AcceleratorProduct,
    ) -> Result<(ProgrammedInstance, DataEncryptionKey), ShefError> {
        // Stage the encrypted bitstream on the instance.
        board.boot_medium.store(
            image_names::ACCELERATOR_BITSTREAM,
            product.encrypted_bitstream.0.clone(),
        );
        // Secure boot.
        let boot_report = secure_boot(&mut board)?;
        // Attestation: Data Owner relays messages over untrusted
        // channels; contents are signed/sealed end to end.
        let (challenge, session) = vendor.begin_attestation();
        let response = kernel_handle_challenge(&mut board, &challenge)?;
        let device_cert = manufacturer
            .ca()
            .device_certificate(board.device.die_serial())
            .ok_or_else(|| ShefError::AttestationFailed("device has no certificate".into()))?
            .clone();
        let (sealed_key, shield_public) =
            vendor.complete_attestation(&session, &response, &device_cert, &product.accel_id)?;
        // Kernel decrypts + loads the accelerator.
        let bitstream = kernel_receive_bitstream_key(&mut board, &sealed_key)?;
        if bitstream.accel_id != product.accel_id {
            return Err(ShefError::ProtocolViolation(
                "bitstream/product mismatch".into(),
            ));
        }
        // Shield comes alive inside the PR region.
        let shield = Shield::new(bitstream.shield_config.clone(), bitstream.shield_keypair())?;
        debug_assert_eq!(shield.public_key(), shield_public);
        // Data Owner generates the Data Encryption Key and provisions it
        // through the Load Key.
        let dek = DataEncryptionKey::from_bytes(self.rng.generate_array::<32>());
        let load_key = dek.to_load_key(&shield_public);
        let mut instance = ProgrammedInstance {
            board,
            shield,
            accel_id: bitstream.accel_id,
            logic: bitstream.logic,
            boot_report,
        };
        instance.shield.provision_load_key(&load_key)?;
        Ok((instance, dek))
    }

    /// Generates a standalone Data Encryption Key (multi-Shield setups).
    #[must_use]
    pub fn generate_data_key(&mut self) -> DataEncryptionKey {
        DataEncryptionKey::from_bytes(self.rng.generate_array::<32>())
    }

    /// Builds a Load Key for an additional Shield module.
    #[must_use]
    pub fn build_load_key(
        &self,
        dek: &DataEncryptionKey,
        shield_public: &EciesPublicKey,
    ) -> LoadKey {
        dek.to_load_key(shield_public)
    }
}

/// Convenience: the complete environment for tests and examples.
pub struct TestBench {
    /// The manufacturer and CA.
    pub manufacturer: Manufacturer,
    /// The CSP.
    pub csp: Csp,
    /// The vendor with the kernel-hash registry.
    pub vendor: IpVendor,
    /// The data owner.
    pub data_owner: DataOwner,
}

impl core::fmt::Debug for TestBench {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TestBench").finish_non_exhaustive()
    }
}

impl TestBench {
    /// Builds the standard four-party environment.
    #[must_use]
    pub fn new(scenario: &str) -> Self {
        let manufacturer = Manufacturer::new(format!("manufacturer.{scenario}").as_bytes());
        let mut registry = MeasurementRegistry::new();
        registry.publish_kernel_hash(shef_crypto::sha2::Sha256::digest(SECURITY_KERNEL_BINARY));
        let vendor = IpVendor::new("acme-accel", manufacturer.ca_root(), registry);
        TestBench {
            manufacturer,
            csp: Csp::new("aws-f1-shell-v1.4"),
            vendor,
            data_owner: DataOwner::new(format!("data-owner.{scenario}").as_bytes()),
        }
    }

    /// Provisions and racks a fresh board.
    ///
    /// # Errors
    ///
    /// Propagates provisioning errors.
    pub fn fresh_board(&mut self, die_serial: &[u8]) -> Result<Board, ShefError> {
        let mut board = Board::new(die_serial);
        self.manufacturer.provision_device(&mut board)?;
        self.csp.rack_board(&mut board)?;
        Ok(board)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shield::{EngineSetConfig, MemRange};

    fn shield_config() -> ShieldConfig {
        ShieldConfig::builder()
            .region(
                "data",
                MemRange::new(0, 1 << 20),
                EngineSetConfig {
                    zero_fill_writes: true,
                    ..EngineSetConfig::default()
                },
            )
            .build()
            .unwrap()
    }

    #[test]
    fn full_lifecycle() {
        let mut bench = TestBench::new("lifecycle");
        let board = bench.fresh_board(b"die-001").unwrap();
        let product = bench
            .vendor
            .package_accelerator("demo", shield_config(), vec![0xAA; 64])
            .unwrap();
        let (instance, _dek) = bench
            .data_owner
            .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
            .unwrap();
        assert_eq!(instance.accel_id, "demo");
        assert!(instance.shield.is_provisioned());
        assert!(instance.board.device.ports.monitors_armed());
    }

    #[test]
    fn unprovisioned_device_cannot_deploy() {
        let mut bench = TestBench::new("unprov");
        // Board with no manufacturer provisioning.
        let mut board = Board::new(b"grey-market-die");
        bench.csp.rack_board(&mut board).unwrap();
        let product = bench
            .vendor
            .package_accelerator("demo", shield_config(), vec![])
            .unwrap();
        let err = bench
            .data_owner
            .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
            .unwrap_err();
        // Boot fails at the key store: nothing burned.
        assert!(matches!(err, ShefError::Fpga(_)));
    }

    #[test]
    fn device_from_other_manufacturer_rejected() {
        let mut bench = TestBench::new("two-makers");
        // A second manufacturer provisions the board, but the vendor
        // trusts only the first CA.
        let mut rogue = Manufacturer::new(b"rogue-maker");
        let mut board = Board::new(b"die-rogue");
        rogue.provision_device(&mut board).unwrap();
        bench.csp.rack_board(&mut board).unwrap();
        let product = bench
            .vendor
            .package_accelerator("demo", shield_config(), vec![])
            .unwrap();
        let err = bench
            .data_owner
            .deploy(board, &mut bench.vendor, &rogue, &product)
            .unwrap_err();
        assert!(matches!(err, ShefError::AttestationFailed(_)));
    }

    #[test]
    fn vendor_products_are_isolated() {
        let mut bench = TestBench::new("multi-product");
        let p1 = bench
            .vendor
            .package_accelerator("p1", shield_config(), vec![1])
            .unwrap();
        let p2 = bench
            .vendor
            .package_accelerator("p2", shield_config(), vec![2])
            .unwrap();
        assert_ne!(p1.shield_public, p2.shield_public);
        assert_ne!(p1.encrypted_bitstream.hash(), p2.encrypted_bitstream.hash());
    }

    #[test]
    fn deployed_instance_runs_shielded_io() {
        use crate::shield::client;
        use shef_fpga::clock::CostLedger;

        let mut bench = TestBench::new("io");
        let board = bench.fresh_board(b"die-io").unwrap();
        let product = bench
            .vendor
            .package_accelerator("demo", shield_config(), vec![])
            .unwrap();
        let (mut instance, dek) = bench
            .data_owner
            .deploy(board, &mut bench.vendor, &bench.manufacturer, &product)
            .unwrap();

        // Data Owner provisions encrypted input via host DMA.
        let region = instance.shield.config().regions[0].clone();
        let input = vec![0x5Au8; 4096];
        let enc = client::encrypt_region(&dek, &region, &input, 0);
        let mut ledger = CostLedger::new();
        let tag_base = instance.shield.config().tag_base(0);
        instance
            .board
            .host
            .dma_to_device(
                &mut instance.board.shell,
                &mut instance.board.device.dram,
                &mut ledger,
                0,
                &enc.ciphertext,
            )
            .unwrap();
        instance
            .board
            .host
            .dma_to_device(
                &mut instance.board.shell,
                &mut instance.board.device.dram,
                &mut ledger,
                tag_base,
                &enc.tags,
            )
            .unwrap();
        // Accelerator reads plaintext through the Shield.
        let got = instance
            .shield
            .read(
                &mut instance.board.shell,
                &mut instance.board.device.dram,
                &mut ledger,
                0,
                4096,
                crate::shield::AccessMode::Streaming,
            )
            .unwrap();
        assert_eq!(got, input);
    }
}
