//! A vendored, API-compatible subset of the `criterion` benchmark
//! harness.
//!
//! This workspace builds fully offline (no crates-io access), so the
//! real `criterion` cannot be fetched. The benches under
//! `crates/bench/benches/` are written against the standard criterion
//! surface — `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter` — and this shim
//! implements exactly that subset so they compile unchanged against the
//! real crate if it is ever substituted back.
//!
//! Measurement is intentionally simple: each benchmark is auto-scaled
//! (iteration count doubles until the timed batch crosses a floor),
//! then the mean wall-clock time per iteration and, when a
//! [`Throughput`] was declared, the implied bandwidth are printed. No
//! statistics, plots, or baselines — just enough signal for smoke runs
//! and coarse regression eyeballing:
//!
//! ```
//! use criterion::{black_box, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("add", |b| b.iter(|| black_box(2u64 + 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().0;
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility only; the shim auto-scales
    /// iteration counts instead of sampling, so the value is discarded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.0, &bencher);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<P, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.0, &bencher);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let iters = bencher.iters.max(1);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(iters);
        let mut line = format!("  {}/{id}: {per_iter} ns/iter ({iters} iters)", self.name,);
        if let Some(tp) = &self.throughput {
            let secs = bencher.elapsed.as_secs_f64() / iters as f64;
            if secs > 0.0 {
                match tp {
                    Throughput::Bytes(n) => {
                        let mbps = (*n as f64) / secs / 1e6;
                        line.push_str(&format!("   {mbps:.1} MB/s"));
                    }
                    Throughput::Elements(n) => {
                        let eps = (*n as f64) / secs / 1e6;
                        line.push_str(&format!("   {eps:.3} Melem/s"));
                    }
                }
            }
        }
        println!("{line}");
    }
}

/// Per-iteration payload declaration for bandwidth reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`"name"`, `String`, or
/// `BenchmarkId::new(function, parameter)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter into one identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timer handed to the benchmark closure; `iter` runs and times the
/// routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Minimum timed-batch duration before a measurement is accepted.
    const FLOOR: Duration = Duration::from_millis(20);
    /// Hard cap on auto-scaled iteration count.
    const MAX_ITERS: u64 = 1 << 22;

    /// Times `routine`, auto-scaling the iteration count until the
    /// batch is long enough to measure reliably.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Self::FLOOR || n >= Self::MAX_ITERS {
                self.iters = n;
                self.elapsed = elapsed;
                return;
            }
            // Grow toward the floor in one step when the timing signal
            // is usable, otherwise double.
            let grown = if elapsed.as_nanos() > 1_000 {
                let target = Self::FLOOR.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((n as f64 * target * 1.2) as u64).max(n * 2)
            } else {
                n * 8
            };
            n = grown.min(Self::MAX_ITERS);
        }
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_self_test");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_measures() {
        let mut criterion = Criterion::default();
        trivial_bench(&mut criterion);
    }
}
